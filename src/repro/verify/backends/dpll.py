"""The ablation-baseline backend: plain DPLL (DESIGN.md A2).

Registered and unit-tested, but **retired from the default bench
workload** (``benchmarks/run_paper_tables.py``): without clause
learning the solver blows up ~30x per +2 adder qubits past n=8, so its
row was pinned to an n=8/3s cap that only dragged the verify record
while measuring nothing the cdcl row does not.  It remains available
as an ablation baseline (``backend="dpll"``) for anyone studying what
clause learning buys.
"""

from __future__ import annotations

from repro.boolfn.cnf import Cnf
from repro.sat.dpll import DpllSolver
from repro.sat.result import SatResult
from repro.verify.backends.registry import register_backend
from repro.verify.backends.sat import SatCheckerBackend, StopCheck


@register_backend("dpll")
class DpllCheckerBackend(SatCheckerBackend):
    """Decide the obligations with :class:`repro.sat.dpll.DpllSolver`."""

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        return DpllSolver(cnf, stop_check=stop_check).solve()
