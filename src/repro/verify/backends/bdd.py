"""The ROBDD backend, with per-circuit formula sharing.

All final formulas are compiled once into one manager (shared node
cache) at construction; per-qubit checks are then cofactor/XOR/zero-test
operations, each memoised inside the manager.  Canonicity makes the
unsatisfiability tests O(1) once the compile is paid — which is why the
batch engine's one-checker-per-circuit reuse matters most here.

The manager's unique/apply tables are not safe under concurrent
mutation, so this backend is ``parallel_safe = False``: the batch engine
serialises its checks (they are cheap after the shared compile).
"""

from __future__ import annotations

import threading
import time
from typing import ClassVar, Dict, Optional

from repro.bdd.robdd import Bdd
from repro.errors import SolverCancelled
from repro.verify.backends.base import BooleanCheckOutcome, CheckerBackend
from repro.verify.backends.registry import register_backend
from repro.verify.tracking import TrackedFormulas


@register_backend("bdd")
class BddCheckerBackend(CheckerBackend):
    """Decide formulas (6.1)/(6.2) on ROBDDs with formula sharing.

    ``reverse_order=True`` is the variable-order ablation (registered
    separately as ``bdd-reversed``).
    """

    parallel_safe: ClassVar[bool] = False

    def __init__(self, tracked: TrackedFormulas, reverse_order: bool = False):
        super().__init__(tracked)
        order = [
            tracked.names[q] for q in range(tracked.circuit.num_qubits)
        ]
        if reverse_order:
            order = list(reversed(order))
        self.bdd = Bdd(order)
        self._expr_cache: Dict[int, int] = {}
        self.compiled: Dict[int, int] = {}
        for q in range(tracked.circuit.num_qubits):
            self.compiled[q] = self.bdd.from_expr(
                tracked.formulas[q], self._expr_cache
            )

    def check_qubit(
        self,
        qubit: int,
        cancel_event: Optional[threading.Event] = None,
    ) -> BooleanCheckOutcome:
        start = time.perf_counter()
        name = self.tracked.names[qubit]
        bdd = self.bdd
        # Formula (6.1): b_q with q := 0 must be the 0 terminal.
        zero_cofactor = bdd.restrict(self.compiled[qubit], name, False)
        if not bdd.is_false(zero_cofactor):
            model = bdd.any_sat(zero_cofactor) or {}
            model[name] = False
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="zero-restoration",
                counterexample=model,
                solve_seconds=time.perf_counter() - start,
                details={"bdd_nodes": bdd.node_count},
            )
        # Formula (6.2): each other final formula must be q-independent.
        for other in range(self.tracked.circuit.num_qubits):
            if cancel_event is not None and cancel_event.is_set():
                raise SolverCancelled("BDD check cancelled by caller")
            if other == qubit:
                continue
            f = self.compiled[other]
            derivative = bdd.apply_xor(
                bdd.restrict(f, name, False), bdd.restrict(f, name, True)
            )
            if not bdd.is_false(derivative):
                model = bdd.any_sat(derivative) or {}
                return BooleanCheckOutcome(
                    qubit,
                    safe=False,
                    failed_condition="plus-restoration",
                    counterexample=model,
                    solve_seconds=time.perf_counter() - start,
                    details={
                        "bdd_nodes": bdd.node_count,
                        "dependent_qubit": self.tracked.names[other],
                    },
                )
        return BooleanCheckOutcome(
            qubit,
            safe=True,
            solve_seconds=time.perf_counter() - start,
            details={"bdd_nodes": bdd.node_count},
        )
