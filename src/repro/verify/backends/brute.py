"""The enumeration oracle backend — differential-testing ground truth.

Brute force is exponential in the CNF variable count, so this backend
never shares encodings: every check gets a cone-local instance, keeping
the count at the minimum the obligation needs.

Cones within ``bitset_max_vars`` variables never reach the CNF
enumerator at all: they are dispatched to the vectorised truth-table
kernel (:func:`repro.boolfn.bitset.bitset_solve`), which decides the
same exhaustive question with one big-int op per DAG node instead of
one interpreter step per (assignment, clause) pair.  Verdicts are
identical by construction — both enumerate the full assignment space —
and every witness is replayed on the simulator downstream, so the fast
path changes the wall clock, not the oracle.  Pass ``bitset_max_vars=0``
to force the historical pure-CNF enumeration (the benchmark's baseline
knob).
"""

from __future__ import annotations

from typing import ClassVar, Dict, Optional, Tuple

from repro.boolfn.bitset import DEFAULT_MAX_VARS, bitset_solve
from repro.boolfn.cnf import Cnf
from repro.boolfn.expr import Expr
from repro.sat.brute import brute_force_solve
from repro.sat.result import SatResult
from repro.verify.backends.registry import register_backend
from repro.verify.backends.sat import SatCheckerBackend, StopCheck
from repro.verify.tracking import TrackedFormulas


@register_backend("brute")
class BruteCheckerBackend(SatCheckerBackend):
    """Decide the obligations by exhaustive assignment enumeration."""

    share_zero_encoder: ClassVar[bool] = False

    def __init__(
        self,
        tracked: TrackedFormulas,
        bitset_max_vars: int = DEFAULT_MAX_VARS,
    ):
        super().__init__(tracked)
        self.bitset_max_vars = bitset_max_vars

    def _solve_fresh(
        self, expr: Expr, stop_check: StopCheck = None
    ) -> Tuple[SatResult, Optional[Dict[str, bool]], Cnf]:
        if len(expr.variables()) <= self.bitset_max_vars:
            result, model = bitset_solve(expr, max_vars=self.bitset_max_vars)
            # No CNF was built; an empty instance keeps the outcome
            # details honest (zero clauses enumerated).
            return result, model, Cnf()
        return super()._solve_fresh(expr, stop_check)

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        return brute_force_solve(cnf, stop_check=stop_check)
