"""The enumeration oracle backend — differential-testing ground truth.

Brute force is exponential in the CNF variable count, so this backend
never shares encodings: every check gets a cone-local instance, keeping
the count at the minimum the obligation needs.
"""

from __future__ import annotations

from typing import ClassVar

from repro.boolfn.cnf import Cnf
from repro.sat.brute import brute_force_solve
from repro.sat.result import SatResult
from repro.verify.backends.registry import register_backend
from repro.verify.backends.sat import SatCheckerBackend, StopCheck


@register_backend("brute")
class BruteCheckerBackend(SatCheckerBackend):
    """Decide the obligations by exhaustive assignment enumeration."""

    share_zero_encoder: ClassVar[bool] = False

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        return brute_force_solve(cnf, stop_check=stop_check)
