"""The vectorised truth-table backend — exhaustive checking, fast.

Where the ``brute`` backend enumerates CNF assignments one interpreter
step at a time, this backend hands each obligation cone to
:func:`repro.boolfn.bitset.bitset_solve`: one arbitrary-precision
integer per DAG node evaluates all ``2**n`` assignments per Python-level
op.  On cones the obligations actually produce (bounded by the circuit
width), exhaustive checking becomes the *fast* path — it beats the CNF
solvers outright on the adder family — while remaining the same
enumeration-complete oracle.  Cones wider than ``max_vars`` raise
:class:`~repro.errors.SolverError`; under a portfolio race another
contender then supplies the verdict.
"""

from __future__ import annotations

import threading
import time
from typing import ClassVar, Optional

from repro.boolfn.bitset import DEFAULT_MAX_VARS, bitset_solve
from repro.errors import SolverCancelled
from repro.verify.backends.base import BooleanCheckOutcome, CheckerBackend
from repro.verify.backends.registry import register_backend
from repro.verify.tracking import TrackedFormulas, formula_61, formula_62


@register_backend("bitset")
class BitsetCheckerBackend(CheckerBackend):
    """Decide the obligations by vectorised truth-table evaluation."""

    parallel_safe: ClassVar[bool] = True

    def __init__(self, tracked: TrackedFormulas, max_vars: int = DEFAULT_MAX_VARS):
        super().__init__(tracked)
        self.max_vars = max_vars

    def check_qubit(
        self,
        qubit: int,
        cancel_event: Optional[threading.Event] = None,
    ) -> BooleanCheckOutcome:
        start = time.perf_counter()
        # One table evaluation is a handful of big-int ops — there is no
        # loop worth polling inside, so cancellation is honoured at the
        # obligation boundary.
        if cancel_event is not None and cancel_event.is_set():
            raise SolverCancelled("bitset check cancelled by caller")
        expr1 = formula_61(self.tracked, qubit)
        result1, model1 = bitset_solve(expr1, max_vars=self.max_vars)
        if result1.is_sat:
            model1[self.tracked.names[qubit]] = False
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="zero-restoration",
                counterexample=model1,
                solve_seconds=time.perf_counter() - start,
                details={"assignments": result1.stats.decisions},
            )
        if cancel_event is not None and cancel_event.is_set():
            raise SolverCancelled("bitset check cancelled by caller")
        expr2 = formula_62(self.tracked, qubit)
        result2, model2 = bitset_solve(expr2, max_vars=self.max_vars)
        elapsed = time.perf_counter() - start
        if result2.is_sat:
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="plus-restoration",
                counterexample=model2,
                solve_seconds=elapsed,
                details={"assignments": result2.stats.decisions},
            )
        return BooleanCheckOutcome(
            qubit,
            safe=True,
            solve_seconds=elapsed,
            details={
                "assignments": result1.stats.decisions
                + result2.stats.decisions,
            },
        )
