"""Pluggable verification backends for the Theorem 6.4 reduction.

Layout
------
* :mod:`~repro.verify.backends.base` — :class:`CheckerBackend` and the
  :class:`BooleanCheckOutcome` verdict record;
* :mod:`~repro.verify.backends.registry` — ``@register_backend`` and the
  name → class lookup behind :func:`make_checker`;
* one module per engine: :mod:`~repro.verify.backends.cdcl`
  (incremental assumption-probing SAT), :mod:`~repro.verify.backends.dpll`,
  :mod:`~repro.verify.backends.brute` (CNF SAT),
  :mod:`~repro.verify.backends.bitset` (vectorised truth tables),
  :mod:`~repro.verify.backends.bdd`,
  :mod:`~repro.verify.backends.bdd_reversed` (canonical ROBDDs) and
  :mod:`~repro.verify.backends.portfolio` (SAT vs BDD race, its SAT
  contender picked from the recorded bench trajectory).

Importing this package registers every built-in backend.  Third-party
backends only need to subclass :class:`CheckerBackend` and apply the
decorator; no central list to edit.
"""

from repro.verify.backends.base import BooleanCheckOutcome, CheckerBackend
from repro.verify.backends.registry import (
    available_backends,
    backend_class,
    make_checker,
    register_backend,
)

# Importing the engine modules is what populates the registry.
from repro.verify.backends.cdcl import CdclCheckerBackend
from repro.verify.backends.dpll import DpllCheckerBackend
from repro.verify.backends.brute import BruteCheckerBackend
from repro.verify.backends.bitset import BitsetCheckerBackend
from repro.verify.backends.bdd import BddCheckerBackend
from repro.verify.backends.bdd_reversed import BddReversedCheckerBackend
from repro.verify.backends.portfolio import PortfolioCheckerBackend
from repro.verify.backends.sat import SatCheckerBackend

__all__ = [
    "BddCheckerBackend",
    "BddReversedCheckerBackend",
    "BitsetCheckerBackend",
    "BooleanCheckOutcome",
    "BruteCheckerBackend",
    "CdclCheckerBackend",
    "CheckerBackend",
    "DpllCheckerBackend",
    "PortfolioCheckerBackend",
    "SatCheckerBackend",
    "available_backends",
    "backend_class",
    "make_checker",
    "register_backend",
]
