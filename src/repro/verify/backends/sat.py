"""Shared machinery of the CNF SAT backends (cdcl / dpll / brute).

Each check Tseitin-encodes the obligation and runs the solver named by
the subclass.  The zero-restoration formulas (6.1) of different qubits
are cones over the *same* tracked ``b_q`` DAGs, so those encodings are
accumulated in one per-circuit :class:`TseitinEncoder` — node variables
and defining clauses are emitted once and reused by every later check
on the circuit.  The plus-restoration formulas (6.2) are dominated by
qubit-specific cofactors with little cross-qubit sharing, so they use a
cone-local encoder to keep each solver instance minimal.

Solver runs happen outside the encoder lock, so per-qubit checks from
the batch engine's worker threads overlap in the solve phase.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, ClassVar, Dict, Optional, Tuple

from repro.boolfn.cnf import Cnf, TseitinEncoder
from repro.boolfn.expr import Expr
from repro.sat.result import SatResult
from repro.verify.backends.base import BooleanCheckOutcome, CheckerBackend
from repro.verify.tracking import TrackedFormulas, formula_61, formula_62

StopCheck = Optional[Callable[[], bool]]


class SatCheckerBackend(CheckerBackend):
    """Decide formulas (6.1)/(6.2) with a CNF SAT solver."""

    parallel_safe: ClassVar[bool] = True
    #: Whether (6.1) checks share one per-circuit encoder.  The brute
    #: backend turns this off: enumeration is exponential in the
    #: variable count, so its instances must stay cone-local.
    share_zero_encoder: ClassVar[bool] = True

    def __init__(self, tracked: TrackedFormulas):
        super().__init__(tracked)
        self._encoder_lock = threading.Lock()
        self._zero_encoder: Optional[TseitinEncoder] = (
            TseitinEncoder() if self.share_zero_encoder else None
        )

    # ------------------------------------------------------------------ #
    # Solver plumbing
    # ------------------------------------------------------------------ #

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        raise NotImplementedError

    def _solve_fresh(
        self, expr: Expr, stop_check: StopCheck = None
    ) -> Tuple[SatResult, Optional[Dict[str, bool]], Cnf]:
        encoder = TseitinEncoder()
        encoder.assert_true(expr)
        result = self._run_solver(encoder.cnf, stop_check)
        model = encoder.decode_model(result.model) if result.is_sat else None
        return result, model, encoder.cnf

    def _solve_shared(
        self, expr: Expr, stop_check: StopCheck = None
    ) -> Tuple[SatResult, Optional[Dict[str, bool]], Cnf]:
        """Encode into the per-circuit instance, assert via one extra
        unit clause, and solve a throwaway view of the clause list."""
        if self._zero_encoder is None:
            return self._solve_fresh(expr, stop_check)
        with self._encoder_lock:
            literal = self._zero_encoder.literal(expr)
            base = self._zero_encoder.cnf
            cnf = Cnf(base.num_vars, base.clauses + [[literal]])
        result = self._run_solver(cnf, stop_check)
        model = None
        if result.is_sat:
            with self._encoder_lock:
                model = self._zero_encoder.decode_model(result.model)
        return result, model, cnf

    # ------------------------------------------------------------------ #
    # The Theorem 6.4 check
    # ------------------------------------------------------------------ #

    def check_qubit(
        self,
        qubit: int,
        cancel_event: Optional[threading.Event] = None,
    ) -> BooleanCheckOutcome:
        start = time.perf_counter()
        stop_check = self._stop_check(cancel_event)
        expr1 = formula_61(self.tracked, qubit)
        result1, model1, cnf1 = self._solve_shared(expr1, stop_check)
        if result1.is_sat:
            model1[self.tracked.names[qubit]] = False
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="zero-restoration",
                counterexample=model1,
                solve_seconds=time.perf_counter() - start,
                details={"cnf_clauses": len(cnf1.clauses)},
            )
        expr2 = formula_62(self.tracked, qubit)
        result2, model2, cnf2 = self._solve_fresh(expr2, stop_check)
        elapsed = time.perf_counter() - start
        if result2.is_sat:
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="plus-restoration",
                counterexample=model2,
                solve_seconds=elapsed,
                details={"cnf_clauses": len(cnf2.clauses)},
            )
        return BooleanCheckOutcome(
            qubit,
            safe=True,
            solve_seconds=elapsed,
            details={
                "cnf_clauses": len(cnf1.clauses) + len(cnf2.clauses),
            },
        )
