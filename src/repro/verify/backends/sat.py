"""Shared machinery of the CNF SAT backends (cdcl / dpll / brute).

Each check Tseitin-encodes the obligation and runs the solver named by
the subclass.  The zero-restoration formulas (6.1) of different qubits
are cones over the *same* tracked ``b_q`` DAGs, so those encodings are
accumulated in one per-circuit :class:`TseitinEncoder` — node variables
and defining clauses are emitted once and reused by every later check
on the circuit.  The plus-restoration formulas (6.2) are dominated by
qubit-specific cofactors with little cross-qubit sharing, so they use a
cone-local encoder to keep each solver instance minimal.

Backends whose engine is incremental (``incremental = True``, i.e.
cdcl) go further: **one long-lived solver per circuit** holds the whole
shared Tseitin instance — (6.1) *and* (6.2) cones, which share their
``b_q`` subterms through hash-consing — and every obligation is
discharged as an *assumption probe* (``solve(assumptions=[root])``)
against it.  Defining clauses are fed to the solver exactly once, and
learned clauses, variable activities and saved phases carry over
between probes, so a 13-obligation batch costs a fraction of 13 fresh
solver runs.  Probes against the one solver serialise on an internal
lock; true multi-core parallelism comes from the batch engine's
process-pool executor, where each worker owns its own solver.

Non-incremental solver runs happen outside the encoder lock, so
per-qubit checks from the batch engine's worker threads overlap in the
solve phase.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, ClassVar, Dict, Optional, Tuple

from repro.boolfn.cnf import Cnf, TseitinEncoder
from repro.boolfn.expr import Expr
from repro.errors import SolverError
from repro.sat.result import SatResult
from repro.verify.backends.base import BooleanCheckOutcome, CheckerBackend
from repro.verify.tracking import TrackedFormulas, formula_61, formula_62

StopCheck = Optional[Callable[[], bool]]


class SatCheckerBackend(CheckerBackend):
    """Decide formulas (6.1)/(6.2) with a CNF SAT solver."""

    parallel_safe: ClassVar[bool] = True
    #: Whether (6.1) checks share one per-circuit encoder.  The brute
    #: backend turns this off: enumeration is exponential in the
    #: variable count, so its instances must stay cone-local.
    share_zero_encoder: ClassVar[bool] = True
    #: Whether obligations are assumption probes against one long-lived
    #: solver (requires :meth:`_new_incremental_solver`).  May be
    #: overridden per instance by subclass constructors.
    incremental: ClassVar[bool] = False

    def __init__(self, tracked: TrackedFormulas):
        super().__init__(tracked)
        self._encoder_lock = threading.Lock()
        self._zero_encoder: Optional[TseitinEncoder] = (
            TseitinEncoder() if self.share_zero_encoder else None
        )
        if self.incremental:
            #: One encoder + one solver for the whole circuit; the lock
            #: serialises encode-feed-probe rounds across threads.
            self._inc_lock = threading.Lock()
            self._inc_encoder = TseitinEncoder()
            self._inc_solver = None
            self._inc_fed = 0

    # ------------------------------------------------------------------ #
    # Solver plumbing
    # ------------------------------------------------------------------ #

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        raise NotImplementedError

    def _new_incremental_solver(self):
        raise SolverError(
            f"backend {self.name!r} declares incremental=True but "
            f"provides no incremental solver"
        )

    def _solve_fresh(
        self, expr: Expr, stop_check: StopCheck = None
    ) -> Tuple[SatResult, Optional[Dict[str, bool]], Cnf]:
        encoder = TseitinEncoder()
        encoder.assert_true(expr)
        result = self._run_solver(encoder.cnf, stop_check)
        model = encoder.decode_model(result.model) if result.is_sat else None
        return result, model, encoder.cnf

    def _solve_shared(
        self, expr: Expr, stop_check: StopCheck = None
    ) -> Tuple[SatResult, Optional[Dict[str, bool]], Cnf]:
        """Encode into the per-circuit instance, assert via one extra
        unit clause, and solve a throwaway view of the clause list."""
        if self._zero_encoder is None:
            return self._solve_fresh(expr, stop_check)
        with self._encoder_lock:
            literal = self._zero_encoder.literal(expr)
            base = self._zero_encoder.cnf
            cnf = Cnf(base.num_vars, base.clauses + [[literal]])
        result = self._run_solver(cnf, stop_check)
        model = None
        if result.is_sat:
            with self._encoder_lock:
                model = self._zero_encoder.decode_model(result.model)
        return result, model, cnf

    def _solve_incremental(
        self, expr: Expr, stop_check: StopCheck = None
    ) -> Tuple[SatResult, Optional[Dict[str, bool]], Cnf]:
        """Encode into the long-lived instance and probe one assumption.

        The root literal is asserted only for the duration of the
        :meth:`~repro.sat.cdcl.CdclSolver.probe` call, so the instance
        stays satisfiable and reusable while each probe runs with
        fresh-solver mechanics; variable activities and saved phases
        carry over between probes.  Because nothing is ever asserted
        permanently except refuted roots (which are entailed), the
        instance stays definitional — which licenses the ``focus``
        shortcut: branching and propagation are restricted to the
        obligation's own cone, so each probe searches a space the size
        of a fresh cone-local instance without paying re-encoding.
        """
        with self._inc_lock:
            literal = self._inc_encoder.literal(expr)
            focus = self._inc_encoder.cone_vars(expr)
            solver = self._inc_solver
            if solver is None:
                solver = self._inc_solver = self._new_incremental_solver()
            cnf = self._inc_encoder.cnf
            solver.ensure_vars(cnf.num_vars)
            clauses = cnf.clauses
            while self._inc_fed < len(clauses):
                solver.add_clause(clauses[self._inc_fed])
                self._inc_fed += 1
            solver.stop_check = stop_check
            try:
                result = solver.probe(literal, focus=focus)
            finally:
                solver.stop_check = None
            if not result.is_sat:
                # UNSAT under the assumption means the instance entails
                # the root's negation; asserting it is equivalence-
                # preserving and lets later probes unit-propagate
                # through this cone instead of re-searching it.
                solver.add_clause([-literal])
            model = (
                self._inc_encoder.decode_model(result.model)
                if result.is_sat
                else None
            )
            return result, model, cnf

    def _discharge(
        self, expr: Expr, stop_check: StopCheck, shared: bool
    ) -> Tuple[SatResult, Optional[Dict[str, bool]], Cnf]:
        if self.incremental:
            return self._solve_incremental(expr, stop_check)
        if shared:
            return self._solve_shared(expr, stop_check)
        return self._solve_fresh(expr, stop_check)

    # ------------------------------------------------------------------ #
    # The Theorem 6.4 check
    # ------------------------------------------------------------------ #

    def check_qubit(
        self,
        qubit: int,
        cancel_event: Optional[threading.Event] = None,
    ) -> BooleanCheckOutcome:
        start = time.perf_counter()
        stop_check = self._stop_check(cancel_event)
        expr1 = formula_61(self.tracked, qubit)
        result1, model1, cnf1 = self._discharge(expr1, stop_check, shared=True)
        if result1.is_sat:
            model1[self.tracked.names[qubit]] = False
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="zero-restoration",
                counterexample=model1,
                solve_seconds=time.perf_counter() - start,
                details={"cnf_clauses": len(cnf1.clauses)},
            )
        expr2 = formula_62(self.tracked, qubit)
        result2, model2, cnf2 = self._discharge(expr2, stop_check, shared=False)
        elapsed = time.perf_counter() - start
        if result2.is_sat:
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="plus-restoration",
                counterexample=model2,
                solve_seconds=elapsed,
                details={"cnf_clauses": len(cnf2.clauses)},
            )
        return BooleanCheckOutcome(
            qubit,
            safe=True,
            solve_seconds=elapsed,
            details={
                "cnf_clauses": len(cnf1.clauses) + len(cnf2.clauses),
            },
        )
