"""The variable-order ablation: ROBDDs compiled bottom-up.

Identical algebra to :mod:`repro.verify.backends.bdd` but with the
variable order reversed — the DESIGN.md ablation quantifying how much
the natural circuit order buys the canonical representation.
"""

from __future__ import annotations

from repro.verify.backends.bdd import BddCheckerBackend
from repro.verify.backends.registry import register_backend
from repro.verify.tracking import TrackedFormulas


@register_backend("bdd-reversed")
class BddReversedCheckerBackend(BddCheckerBackend):
    """ROBDD checker over the reversed variable order."""

    def __init__(self, tracked: TrackedFormulas):
        super().__init__(tracked, reverse_order=True)
