"""The default backend: conflict-driven clause learning SAT."""

from __future__ import annotations

from repro.boolfn.cnf import Cnf
from repro.sat.cdcl import CdclSolver
from repro.sat.result import SatResult
from repro.verify.backends.registry import register_backend
from repro.verify.backends.sat import SatCheckerBackend, StopCheck


@register_backend("cdcl")
class CdclCheckerBackend(SatCheckerBackend):
    """Decide the obligations with :class:`repro.sat.cdcl.CdclSolver`."""

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        return CdclSolver(cnf, stop_check=stop_check).solve()
