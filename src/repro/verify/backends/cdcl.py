"""The default backend: conflict-driven clause learning SAT.

Runs **incrementally** by default: one long-lived
:class:`~repro.sat.cdcl.CdclSolver` holds the circuit's shared Tseitin
instance and every (6.1)/(6.2) obligation is an assumption probe
against it, keeping learned clauses, activities and phases across the
whole per-qubit batch (see :mod:`repro.verify.backends.sat`).  Pass
``incremental=False`` for the historical fresh-instance-per-check
behaviour — the benchmark's baseline knob.
"""

from __future__ import annotations

from repro.boolfn.cnf import Cnf
from repro.sat.cdcl import CdclSolver
from repro.sat.result import SatResult
from repro.verify.backends.registry import register_backend
from repro.verify.backends.sat import SatCheckerBackend, StopCheck
from repro.verify.tracking import TrackedFormulas


@register_backend("cdcl")
class CdclCheckerBackend(SatCheckerBackend):
    """Decide the obligations with :class:`repro.sat.cdcl.CdclSolver`."""

    incremental = True

    def __init__(self, tracked: TrackedFormulas, incremental: bool = True):
        self.incremental = incremental
        super().__init__(tracked)

    def _new_incremental_solver(self) -> CdclSolver:
        return CdclSolver()

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        return CdclSolver(cnf, stop_check=stop_check).solve()
