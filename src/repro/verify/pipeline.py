"""End-to-end verification of dirty qubits in classical circuits.

:func:`verify_circuit` is the single-circuit entry point of the Section
6 pipeline — formula tracking, the Theorem 6.4 reduction, a registered
backend — returning a structured report with replayable
counterexamples.  It is a thin shim over
:class:`repro.verify.batch.BatchVerifier` (a batch of one, sequential);
callers with many circuits or qubits should use the batch engine
directly for shared tracking, worker-pool fan-out and verdict
memoisation.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.verify.batch import BatchVerifier
from repro.verify.report import (
    Counterexample,
    QubitVerdict,
    VerificationReport,
    outcome_to_verdict,
    replay_counterexample,
)

# Historical private names, still imported by older tests and tools.
_replay = replay_counterexample
_to_verdict = outcome_to_verdict


def verify_circuit(
    circuit: Circuit,
    dirty_qubits: Sequence[int],
    backend: str = "cdcl",
    simplify_xor: bool = True,
    replay: bool = True,
) -> VerificationReport:
    """Verify safe uncomputation of each dirty qubit (Theorem 6.4).

    Parameters
    ----------
    circuit:
        A classical circuit (X / multi-controlled-NOT gates only).
    dirty_qubits:
        Wire indices whose safe uncomputation must be checked.
    backend:
        Any name in :func:`repro.verify.backends.available_backends`,
        e.g. ``"cdcl"``, ``"bdd"`` or ``"portfolio"``.
    simplify_xor:
        Apply the Figure 6.1 ``x ⊕ x = 0`` simplification while tracking
        (ablation A1 turns this off).
    replay:
        Re-execute every counterexample on the classical simulator and
        raise if it does not actually violate the claimed condition.
    """
    verifier = BatchVerifier(
        backend=backend,
        max_workers=1,
        simplify_xor=simplify_xor,
        replay=replay,
    )
    return verifier.verify_circuit(circuit, dirty_qubits)


__all__ = [
    "Counterexample",
    "QubitVerdict",
    "VerificationReport",
    "verify_circuit",
]
