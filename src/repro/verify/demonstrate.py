"""Turn Boolean counterexamples into *quantum* demonstrations.

A satisfying model of formula (6.1)/(6.2) is a classical input; this
module runs the corresponding quantum states through the statevector
simulator and reports fidelities, making the abstract verdict tangible:

* ``zero-restoration`` — start the dirty qubit in ``|0>``: it comes back
  ``|1>`` (fidelity 0);
* ``plus-restoration`` — start it in ``|+>``: the reduced output state
  has fidelity < 1 with ``|+>`` (Theorem 5.3's criterion violated);
* additionally, the *entanglement* demonstration of Theorem 5.4: put
  the dirty qubit in a Bell pair with a hypothetical external qubit and
  watch the Bell fidelity drop — the corruption an unsafe borrow would
  inflict on a co-tenant program.

These functions power ``examples/entanglement_demo.py`` and the
integration tests that tie the Section 6 pipeline back to the
Section 5 semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.statevector import run_statevector
from repro.errors import VerificationError
from repro.linalg.partial_trace import reduced_from_ket
from repro.linalg.states import density, fidelity, ket0, ket1, ket_plus
from repro.verify.pipeline import Counterexample

_SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True)
class ViolationDemo:
    """Measured effect of running a violating initial state."""

    kind: str
    fidelity: float  # of the dirty qubit's (or Bell pair's) final state
    expected: str

    @property
    def violated(self) -> bool:
        return self.fidelity < 1.0 - 1e-9

    def __str__(self) -> str:
        return (
            f"{self.kind}: fidelity with {self.expected} dropped to "
            f"{self.fidelity:.4f}"
        )


def _product_ket(bits: Sequence[int], qubit: int, local: np.ndarray):
    """``|b_0 ... local ... b_{n-1}>`` with ``local`` at ``qubit``."""
    state = np.array([1.0], dtype=complex)
    for wire, bit in enumerate(bits):
        factor = local if wire == qubit else (ket1 if bit else ket0)
        state = np.kron(state, factor)
    return state


def demonstrate_plus_violation(
    circuit: Circuit, qubit: int, counterexample: Counterexample
) -> ViolationDemo:
    """Run the counterexample with the dirty qubit in ``|+>``."""
    ket = _product_ket(counterexample.input_bits, qubit, ket_plus)
    out = run_statevector(circuit, ket)
    reduced = reduced_from_ket(out, [qubit], circuit.num_qubits)
    fid = fidelity(reduced, density(ket_plus))
    return ViolationDemo("plus-restoration", fid, "|+>")


def demonstrate_zero_violation(
    circuit: Circuit, qubit: int, counterexample: Counterexample
) -> ViolationDemo:
    """Run the counterexample with the dirty qubit in ``|0>``."""
    bits = list(counterexample.input_bits)
    bits[qubit] = 0
    ket = _product_ket(bits, qubit, ket0)
    out = run_statevector(circuit, ket)
    reduced = reduced_from_ket(out, [qubit], circuit.num_qubits)
    fid = fidelity(reduced, density(ket0))
    return ViolationDemo("zero-restoration", fid, "|0>")


def demonstrate_entanglement_violation(
    circuit: Circuit, qubit: int, counterexample: Counterexample
) -> ViolationDemo:
    """Theorem 5.4's reading: Bell-pair corruption.

    Extends the register with one hypothetical external qubit maximally
    entangled with the dirty qubit and measures the Bell fidelity of
    their joint state after the circuit.
    """
    n = circuit.num_qubits
    extended = Circuit(n + 1, labels=None)
    for gate in circuit.gates:
        extended.append(gate)
    bits = counterexample.input_bits
    # Build sum over the Bell branches: (|0>_q|0>_ext + |1>_q|1>_ext)/sqrt2
    branch0 = np.kron(_product_ket(bits, qubit, ket0), ket0)
    branch1 = np.kron(_product_ket(bits, qubit, ket1), ket1)
    ket = (branch0 + branch1) / _SQRT2
    out = run_statevector(extended, ket)
    reduced = reduced_from_ket(out, [qubit, n], n + 1)
    bell = np.zeros(4, dtype=complex)
    bell[0] = bell[3] = 1.0 / _SQRT2
    fid = fidelity(reduced, density(bell))
    return ViolationDemo("entanglement-preservation", fid, "|Phi>")


def demonstrate(
    circuit: Circuit, qubit: int, counterexample: Counterexample
) -> ViolationDemo:
    """Dispatch on the counterexample kind."""
    if counterexample.kind == "zero-restoration":
        return demonstrate_zero_violation(circuit, qubit, counterexample)
    if counterexample.kind == "plus-restoration":
        return demonstrate_plus_violation(circuit, qubit, counterexample)
    raise VerificationError(
        f"unknown counterexample kind {counterexample.kind!r}"
    )
