"""Disk-persistent verdict cache for the batch verification engine.

:class:`BatchVerifier` memoises verdicts in-process, keyed by
``(circuit fingerprint, qubit, backend, simplify_xor)``.  This module
makes that memo survive the process: :class:`DiskVerdictCache` is a
mutable mapping with the same keys, backed by one JSON file, that the
verifier accepts through its ``cache=`` (or the convenience
``cache_path=``) parameter.  Repeated service-style runs — the
multi-programming scheduler, CI — then skip solver work entirely for
circuits they have seen before, across processes.

Design points:

* **write-through** — every stored verdict is flushed with an atomic
  rename (write temp file, ``os.replace``), so a crash never leaves a
  torn file; solver runs dwarf the serialisation cost;
* **concurrent-writer safe** — a flush is a read-merge-write under an
  advisory file lock (a ``.lock`` sidecar, ``fcntl`` where available):
  verdicts another verifier stored since our last read are folded in
  instead of clobbered, so several ``BatchVerifier`` processes sharing
  one ``cache_path`` converge on the union of their verdicts (a
  verdict is immutable for its key, so merge order cannot disagree);
  deletions are tracked as tombstones so a removed key is not
  resurrected from disk by the next merge;
* **corruption-tolerant** — an unreadable or malformed file is treated
  as empty (recorded in :attr:`DiskVerdictCache.load_error`) and
  overwritten on the next store, so a bad cache can never fail a run;
* **versioned** — payloads carry a schema tag; a future format bump
  invalidates old files instead of misreading them.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from typing import Dict, Iterator, MutableMapping, Optional, Set, Tuple

try:  # POSIX advisory locking; flushes degrade gracefully without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.verify.backends.base import BooleanCheckOutcome

#: The verifier's memo key: (fingerprint, qubit, backend, simplify_xor).
CacheKey = Tuple[str, int, str, bool]

_SCHEMA = "verdict-cache/v1"


def _encode_key(key: CacheKey) -> str:
    fingerprint, qubit, backend, simplify_xor = key
    return f"{fingerprint}:{qubit}:{backend}:{int(simplify_xor)}"


def _decode_key(text: str) -> CacheKey:
    fingerprint, qubit, backend, simplify_xor = text.split(":")
    return fingerprint, int(qubit), backend, bool(int(simplify_xor))


def _encode_outcome(outcome: BooleanCheckOutcome) -> dict:
    return {
        "qubit": outcome.qubit,
        "safe": outcome.safe,
        "failed_condition": outcome.failed_condition,
        "counterexample": outcome.counterexample,
        "solve_seconds": outcome.solve_seconds,
        # Details may hold backend-specific objects; keep only the
        # JSON-representable part (they are informational).
        "details": {
            k: v
            for k, v in outcome.details.items()
            if isinstance(v, (str, int, float, bool, type(None)))
        },
    }


def _decode_outcome(payload: dict) -> BooleanCheckOutcome:
    return BooleanCheckOutcome(
        qubit=int(payload["qubit"]),
        safe=bool(payload["safe"]),
        failed_condition=payload.get("failed_condition"),
        counterexample=payload.get("counterexample"),
        solve_seconds=float(payload.get("solve_seconds", 0.0)),
        details=dict(payload.get("details") or {}),
    )


class DiskVerdictCache(MutableMapping):
    """A JSON-file-backed verdict store, drop-in for the in-memory dict.

    Parameters
    ----------
    path:
        The JSON file; created (with parent directories) on first
        store.
    autosave:
        Flush on every store (the default).  Turn off for bulk loads
        and call :meth:`flush` once at the end.
    """

    def __init__(self, path: str, autosave: bool = True):
        self.path = str(path)
        self.autosave = autosave
        #: Why the existing file was discarded, if it was (human-readable).
        self.load_error: Optional[str] = None
        self._data: Dict[CacheKey, BooleanCheckOutcome] = {}
        #: Keys deleted locally since load — flushes must not merge
        #: them back in from disk.
        self._dropped: Set[CacheKey] = set()
        #: A pending clear(): the next flush overwrites the file
        #: outright instead of merging concurrent writers' verdicts.
        self._wipe = False
        self._load()

    # ---------------------------- mapping ----------------------------- #

    def __getitem__(self, key: CacheKey) -> BooleanCheckOutcome:
        return self._data[key]

    def __setitem__(self, key: CacheKey, outcome: BooleanCheckOutcome) -> None:
        self._data[key] = outcome
        self._dropped.discard(key)
        if self.autosave:
            self.flush()

    def __delitem__(self, key: CacheKey) -> None:
        del self._data[key]
        self._dropped.add(key)
        if self.autosave:
            self.flush()

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[CacheKey]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self._dropped.clear()
        self._wipe = True
        if self.autosave:
            self.flush()

    # --------------------------- persistence -------------------------- #

    @contextmanager
    def deferred(self):
        """Suspend autosave across a bulk of stores; flush once at exit.

        The batch engine wraps each solve round in this, so a batch of
        ``n`` fresh verdicts costs one file write instead of ``n``
        rewrites of the whole store (crash-atomicity drops to batch
        granularity — exactly the unit of work being paid for).
        """
        previous = self.autosave
        self.autosave = False
        try:
            yield self
        finally:
            self.autosave = previous
            if previous:
                self.flush()

    @contextmanager
    def _writer_lock(self):
        """Advisory inter-writer lock (a ``.lock`` sidecar, so the lock
        survives the data file's atomic replacement).  Held across the
        read-merge-write of one flush; two writers that race their
        flushes then serialise and each folds the other's verdicts in.
        Degrades to unlocked (still crash-atomic, but a simultaneous
        flush may lose the other writer's latest batch) where ``fcntl``
        is unavailable."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self.path + ".lock", "a+") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def flush(self) -> None:
        """Atomically write the store to :attr:`path`.

        A flush merges first: verdicts another writer persisted since
        our last read are read back (under the writer lock) unless we
        deleted them locally, so concurrent verifiers sharing one path
        converge on the union instead of last-writer-wins.  After a
        :meth:`clear` the next flush wipes instead of merging.
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with self._writer_lock():
            if self._wipe:
                self._wipe = False
            else:
                disk, _ = self._read_payload()
                for key, outcome in disk.items():
                    if key not in self._data and key not in self._dropped:
                        self._data[key] = outcome
            payload = {
                "schema": _SCHEMA,
                "verdicts": {
                    _encode_key(key): _encode_outcome(outcome)
                    for key, outcome in self._data.items()
                },
            }
            handle, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".verdict-cache-", suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w") as stream:
                    json.dump(payload, stream)
                os.replace(temp_path, self.path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise

    def _read_payload(
        self,
    ) -> Tuple[Dict[CacheKey, BooleanCheckOutcome], Optional[str]]:
        """Decode the on-disk store; a missing/bad file is just empty."""
        try:
            with open(self.path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return {}, None
        except (OSError, ValueError) as error:
            return {}, f"unreadable cache file: {error}"
        try:
            if payload.get("schema") != _SCHEMA:
                return {}, f"schema {payload.get('schema')!r} != {_SCHEMA!r}"
            return {
                _decode_key(text): _decode_outcome(entry)
                for text, entry in payload["verdicts"].items()
            }, None
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            return {}, f"malformed cache payload: {error}"

    def _load(self) -> None:
        self._data, self.load_error = self._read_payload()


__all__ = ["CacheKey", "DiskVerdictCache"]
