"""Safe-uncomputation verification — system S10, the paper's contribution.

Checkers, from most semantic to most scalable:

* :mod:`repro.verify.unitary` — Definition 3.1 on explicit unitaries;
* :mod:`repro.verify.channel` — Definition 5.1 on quantum operations and
  whole programs (plus the Theorem 5.5 determinism test);
* :mod:`repro.verify.basis` — the finite-state refinements of Theorem 6.1
  (conditions 2 and 3);
* :mod:`repro.verify.classical` — Theorem 6.2's two-state criterion,
  decided exactly by truth-table enumeration (the small-scale oracle);
* :mod:`repro.verify.boolean` — the Section 6.1 reduction: tracked Boolean
  formulas, formulas (6.1)/(6.2), SAT and BDD backends (Theorem 6.4);
* :mod:`repro.verify.booltrace` — the Figure 6.1 construction trace;
* :mod:`repro.verify.pipeline` — end-to-end circuit/program verification
  producing per-qubit verdicts with replayable counterexamples.
"""

from repro.verify.unitary import factor_unitary, unitary_acts_identity_on
from repro.verify.channel import (
    borrow_statement_safe,
    operation_acts_identity_on,
    program_is_safe,
    program_safely_uncomputes,
)
from repro.verify.basis import (
    restores_basis_states,
    preserves_bell_entanglement,
)
from repro.verify.classical import classical_safe_uncomputation
from repro.verify.boolean import (
    BooleanCheckOutcome,
    TrackedFormulas,
    formula_61,
    formula_62,
    make_checker,
    track_circuit,
)
from repro.verify.booltrace import formula_trace
from repro.verify.clean import check_clean_uncomputation, verify_clean_wires
from repro.verify.demonstrate import (
    ViolationDemo,
    demonstrate,
    demonstrate_entanglement_violation,
    demonstrate_plus_violation,
    demonstrate_zero_violation,
)
from repro.verify.pipeline import (
    Counterexample,
    QubitVerdict,
    VerificationReport,
    verify_circuit,
)
from repro.verify.program import (
    BorrowVerdict,
    ProgramSafetyReport,
    verify_borrows_in_program,
)

__all__ = [
    "BooleanCheckOutcome",
    "BorrowVerdict",
    "Counterexample",
    "ProgramSafetyReport",
    "QubitVerdict",
    "TrackedFormulas",
    "VerificationReport",
    "ViolationDemo",
    "borrow_statement_safe",
    "check_clean_uncomputation",
    "classical_safe_uncomputation",
    "demonstrate",
    "demonstrate_entanglement_violation",
    "demonstrate_plus_violation",
    "demonstrate_zero_violation",
    "factor_unitary",
    "formula_61",
    "formula_62",
    "formula_trace",
    "make_checker",
    "operation_acts_identity_on",
    "preserves_bell_entanglement",
    "program_is_safe",
    "program_safely_uncomputes",
    "restores_basis_states",
    "track_circuit",
    "unitary_acts_identity_on",
    "verify_borrows_in_program",
    "verify_circuit",
    "verify_clean_wires",
]
