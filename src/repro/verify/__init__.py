"""Safe-uncomputation verification — system S10, the paper's contribution.

Checkers, from most semantic to most scalable:

* :mod:`repro.verify.unitary` — Definition 3.1 on explicit unitaries;
* :mod:`repro.verify.channel` — Definition 5.1 on quantum operations and
  whole programs (plus the Theorem 5.5 determinism test);
* :mod:`repro.verify.basis` — the finite-state refinements of Theorem 6.1
  (conditions 2 and 3);
* :mod:`repro.verify.classical` — Theorem 6.2's two-state criterion,
  decided exactly by truth-table enumeration (the small-scale oracle);
* :mod:`repro.verify.tracking` — the Section 6.1 reduction: tracked
  Boolean formulas and the (6.1)/(6.2) obligations;
* :mod:`repro.verify.backends` — the pluggable decision procedures
  behind Theorem 6.4: a ``@register_backend`` registry with one module
  per engine (``cdcl`` — incremental by default, probing each
  obligation off one long-lived shared solver; ``dpll``; ``brute``;
  ``bitset`` — vectorised truth tables, also ``brute``'s fast path
  under its cone-width threshold; ``bdd``; ``bdd-reversed``) plus
  ``portfolio``, which races the recorded-best SAT engine against BDD
  and returns the first verdict;
* :mod:`repro.verify.batch` — :class:`BatchVerifier`, the throughput
  engine: one tracking pass and one checker per circuit, per-qubit
  checks fanned out over a worker pool (``executor="thread"`` shares
  checkers in-process; ``executor="process"`` ships per-circuit chunks
  to a ``ProcessPoolExecutor`` for true multi-core scaling), verdicts
  memoised by ``(circuit fingerprint, qubit, backend)``;
* :mod:`repro.verify.cache` — :class:`DiskVerdictCache`, the opt-in
  JSON persistence of that memo (``cache_path=`` on the verifier), so
  repeated service runs skip solver work across processes;
* :mod:`repro.verify.report` — per-qubit verdicts and reports with
  simulator-replayed counterexamples;
* :mod:`repro.verify.pipeline` — :func:`verify_circuit`, the
  single-circuit shim over the batch engine;
* :mod:`repro.verify.booltrace` — the Figure 6.1 construction trace;
* :mod:`repro.verify.boolean` — compatibility façade over tracking +
  backends for pre-refactor imports.
"""

from repro.verify.unitary import factor_unitary, unitary_acts_identity_on
from repro.verify.channel import (
    borrow_statement_safe,
    operation_acts_identity_on,
    program_is_safe,
    program_safely_uncomputes,
)
from repro.verify.basis import (
    restores_basis_states,
    preserves_bell_entanglement,
)
from repro.verify.classical import classical_safe_uncomputation
from repro.verify.tracking import (
    TrackedFormulas,
    formula_61,
    formula_62,
    track_circuit,
)
from repro.verify.backends import (
    BooleanCheckOutcome,
    CheckerBackend,
    available_backends,
    make_checker,
    register_backend,
)
from repro.verify.batch import BatchVerifier, VerificationJob
from repro.verify.cache import DiskVerdictCache
from repro.verify.booltrace import formula_trace
from repro.verify.clean import check_clean_uncomputation, verify_clean_wires
from repro.verify.demonstrate import (
    ViolationDemo,
    demonstrate,
    demonstrate_entanglement_violation,
    demonstrate_plus_violation,
    demonstrate_zero_violation,
)
from repro.verify.report import (
    Counterexample,
    QubitVerdict,
    VerificationReport,
)
from repro.verify.pipeline import verify_circuit
from repro.verify.program import (
    BorrowVerdict,
    ProgramSafetyReport,
    verify_borrows_in_program,
)

__all__ = [
    "BatchVerifier",
    "BooleanCheckOutcome",
    "BorrowVerdict",
    "CheckerBackend",
    "Counterexample",
    "DiskVerdictCache",
    "ProgramSafetyReport",
    "QubitVerdict",
    "TrackedFormulas",
    "VerificationJob",
    "VerificationReport",
    "ViolationDemo",
    "available_backends",
    "borrow_statement_safe",
    "check_clean_uncomputation",
    "classical_safe_uncomputation",
    "demonstrate",
    "demonstrate_entanglement_violation",
    "demonstrate_plus_violation",
    "demonstrate_zero_violation",
    "factor_unitary",
    "formula_61",
    "formula_62",
    "formula_trace",
    "make_checker",
    "operation_acts_identity_on",
    "preserves_bell_entanglement",
    "program_is_safe",
    "program_safely_uncomputes",
    "register_backend",
    "restores_basis_states",
    "track_circuit",
    "unitary_acts_identity_on",
    "verify_borrows_in_program",
    "verify_circuit",
    "verify_clean_wires",
]
