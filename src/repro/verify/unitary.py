"""Definition 3.1: a dirty qubit is safely uncomputed in a circuit iff the
circuit's unitary factorises as ``U = V ⊗ I_q``.

The check moves the qubit's wire to the front and inspects the four
blocks: ``U = [[A, B], [C, D]]`` acts as the identity on the front qubit
iff ``B = C = 0`` and ``A = D``.  Note a *global phase between the blocks
is not allowed* — ``Z ⊗ V`` alters ``|+>`` and must be rejected, which is
precisely the Figure 1.4 subtlety.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import QubitError


def move_qubit_front(matrix: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Rewrite an ``n``-qubit operator in the basis with ``qubit`` first."""
    if not 0 <= qubit < num_qubits:
        raise QubitError(f"qubit {qubit} out of range for {num_qubits} qubits")
    dim = 2**num_qubits
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (dim, dim):
        raise QubitError(
            f"matrix of shape {matrix.shape} is not on {num_qubits} qubits"
        )
    order = [qubit] + [p for p in range(num_qubits) if p != qubit]
    tensor = matrix.reshape([2] * (2 * num_qubits))
    perm = order + [num_qubits + p for p in order]
    return tensor.transpose(perm).reshape(dim, dim)


def factor_unitary(
    unitary: np.ndarray, qubit: int, num_qubits: int, atol: float = 1e-9
) -> Optional[np.ndarray]:
    """Return ``V`` such that ``U = V ⊗ I_qubit``, or None if impossible."""
    moved = move_qubit_front(unitary, qubit, num_qubits)
    half = 2 ** (num_qubits - 1)
    a = moved[:half, :half]
    b = moved[:half, half:]
    c = moved[half:, :half]
    d = moved[half:, half:]
    if not np.allclose(b, 0.0, atol=atol):
        return None
    if not np.allclose(c, 0.0, atol=atol):
        return None
    if not np.allclose(a, d, atol=atol):
        return None
    return a


def unitary_acts_identity_on(
    unitary: np.ndarray, qubit: int, num_qubits: int, atol: float = 1e-9
) -> bool:
    """Definition 3.1: does the circuit safely uncompute ``qubit``?"""
    return factor_unitary(unitary, qubit, num_qubits, atol=atol) is not None
