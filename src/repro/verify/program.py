"""Verification of QBorrow *programs* through the scalable pipeline.

The Section 6 reduction works on circuits; this module bridges from the
core language: for a straight-line classical program (unitary
statements only, X / CNOT / CCNOT / MCX, plus ``borrow`` blocks) it
checks every borrow the way Definition 5.1 prescribes — the borrow's
body must safely uncompute the placeholder under *every* resolution of
the nondeterminism — but decides each instance with the SAT/BDD
pipeline instead of dense semantics, so it scales far beyond the
10-qubit cap of :class:`repro.semantics.Interpretation`.

Two observations keep the enumeration small:

* the checked placeholder itself can be bound to a single fresh wire:
  its pool consists of qubits *idle in the body*, which are symmetric
  under renaming, so one representative decides the whole pool;
* other (nested or enclosing) borrows genuinely matter — different
  instantiations merge different wires and can flip the verdict — so
  they are enumerated from their syntactic idle pools exactly as the
  denotational semantics does, with a configurable cap.

The tests cross-validate this against the dense semantics on small
programs (``tests/verify/test_program.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import List, Optional, Sequence

from repro.errors import SemanticsError
from repro.lang.ast import (
    Borrow,
    Seq,
    Skip,
    Statement,
    UnitaryStmt,
    check_well_formed,
    idle,
    mentioned_qubits,
    seq,
    substitute,
    to_circuit,
)
from repro.verify.batch import BatchVerifier
from repro.verify.report import QubitVerdict


@dataclass
class BorrowVerdict:
    """Safety of one ``borrow`` statement in a program."""

    placeholder: str
    safe: bool
    pool_size: int
    instantiations_checked: int
    stuck: bool = False
    failing: QubitVerdict = None

    def __str__(self) -> str:
        if self.stuck:
            return f"borrow {self.placeholder}: STUCK (no idle qubit)"
        status = "safe" if self.safe else "UNSAFE"
        return (
            f"borrow {self.placeholder}: {status} "
            f"(pool {self.pool_size}, "
            f"{self.instantiations_checked} instantiation(s) checked)"
        )


@dataclass
class ProgramSafetyReport:
    """Outcome of :func:`verify_borrows_in_program`."""

    borrows: List[BorrowVerdict] = field(default_factory=list)

    @property
    def all_safe(self) -> bool:
        return all(b.safe for b in self.borrows)

    def summary(self) -> str:
        return "\n".join(str(b) for b in self.borrows) or "(no borrows)"


def _resolve(
    stmt: Statement,
    universe: List[str],
    target: str,
    fresh: str,
    cap: int,
) -> List[Statement]:
    """All borrow-free variants of ``stmt``: the target placeholder is
    bound to ``fresh``; every other borrow ranges over its idle pool."""
    if isinstance(stmt, (Skip, UnitaryStmt)):
        return [stmt]
    if isinstance(stmt, Seq):
        per_item = [
            _resolve(item, universe, target, fresh, cap)
            for item in stmt.items
        ]
        total = 1
        for variants in per_item:
            total *= max(len(variants), 1)
            if total > cap:
                raise SemanticsError(
                    f"borrow enumeration exceeds the cap of {cap}; raise "
                    f"`cap` or verify semantically"
                )
        if any(not variants for variants in per_item):
            return []  # a stuck sub-statement empties the product
        return [seq(*combo) for combo in product(*per_item)]
    if isinstance(stmt, Borrow):
        if stmt.placeholder == target:
            body = substitute(stmt.body, {stmt.placeholder: fresh})
            return _resolve(body, universe, target, fresh, cap)
        pool = sorted(idle(stmt.body, universe))
        out: List[Statement] = []
        for qubit in pool:
            body = substitute(stmt.body, {stmt.placeholder: qubit})
            out.extend(_resolve(body, universe, target, fresh, cap))
            if len(out) > cap:
                raise SemanticsError(
                    f"borrow enumeration exceeds the cap of {cap}; raise "
                    f"`cap` or verify semantically"
                )
        return out
    raise SemanticsError(
        f"{type(stmt).__name__} is not straight-line; only unitary "
        f"statements and borrows are supported here"
    )


def _collect_borrows(stmt: Statement, found: List[Borrow]) -> None:
    if isinstance(stmt, Borrow):
        found.append(stmt)
        _collect_borrows(stmt.body, found)
    elif isinstance(stmt, Seq):
        for item in stmt.items:
            _collect_borrows(item, found)


def verify_borrows_in_program(
    program: Statement,
    universe: Sequence[str],
    backend: str = "cdcl",
    cap: int = 128,
    verifier: Optional[BatchVerifier] = None,
) -> ProgramSafetyReport:
    """Check every borrow of a straight-line classical program.

    A borrow is safe iff its body safely uncomputes the placeholder for
    every instantiation of every *other* borrow in scope (at most
    ``cap`` combinations).  A stuck borrow (empty pool) is vacuously
    safe, matching the universal quantification over the empty set of
    executions.

    Instantiations are checked through one shared batch engine, so
    identical instantiations (which nested borrows produce routinely)
    are memoised instead of re-solved, while the loop still stops at
    the first unsafe one.  Pass a long-lived ``verifier`` to also reuse
    verdicts across programs.
    """
    universe = list(universe)
    check_well_formed(program, universe)
    if verifier is None:
        verifier = BatchVerifier(backend=backend)
    report = ProgramSafetyReport()

    borrows: List[Borrow] = []
    _collect_borrows(program, borrows)

    for node in borrows:
        pool = sorted(idle(node.body, universe))
        if not pool:
            report.borrows.append(
                BorrowVerdict(node.placeholder, True, 0, 0, stuck=True)
            )
            continue
        fresh = f"__fresh_{node.placeholder}"
        variants = _resolve(program, universe, node.placeholder, fresh, cap)
        safe = True
        failing = None
        for variant in variants:
            order = sorted(mentioned_qubits(variant) | set(universe))
            if fresh not in order:
                continue  # this path never executed the borrow's body
            circuit = to_circuit(variant, order)
            # One job per call keeps the early exit on the first unsafe
            # instantiation; the shared verifier still memoises repeated
            # circuits and reuses trackers/checkers across variants.
            circuit_report = verifier.verify_circuit(
                circuit, [order.index(fresh)], backend=backend
            )
            if not circuit_report.verdicts[0].safe:
                safe = False
                failing = circuit_report.verdicts[0]
                break
        report.borrows.append(
            BorrowVerdict(
                node.placeholder,
                safe,
                len(pool),
                len(variants),
                failing=failing,
            )
        )
    return report
