"""Clean-qubit uncomputation checks (the ``alloc`` contract).

A *clean* ancilla starts in ``|0>`` and must be returned to ``|0>`` —
the weaker, classical-only contract the paper contrasts with dirty-qubit
safety (Sections 1 and 3).  For a classical circuit this is: for every
input with the ancilla bit clear, the output ancilla bit is clear —
exactly the unsatisfiability of formula (6.1), i.e. *half* of the
Theorem 6.4 check.

This module gives `alloc` registers of ``.qbr`` programs a verification
story symmetric to ``borrow``:

* :func:`check_clean_uncomputation` — one qubit, any backend;
* :func:`verify_clean_wires` — a report over many clean wires.

Note the deliberate asymmetry with dirty qubits: a clean ancilla may
legitimately *influence other qubits while in use* and may be checked
only on the ``|0>`` slice of inputs; the Figure 1.4 circuit passes this
check and fails the dirty one.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.bdd.robdd import Bdd
from repro.boolfn.cnf import TseitinEncoder
from repro.circuits.circuit import Circuit
from repro.errors import SolverError, VerificationError
from repro.sat.brute import brute_force_solve
from repro.sat.cdcl import CdclSolver
from repro.sat.dpll import DpllSolver
from repro.verify.boolean import TrackedFormulas, formula_61, track_circuit
from repro.verify.pipeline import (
    Counterexample,
    QubitVerdict,
    VerificationReport,
)


def check_clean_uncomputation(
    tracked: TrackedFormulas, qubit: int, backend: str = "cdcl"
):
    """Decide formula (6.1) only; returns ``(clean, model_or_None)``."""
    expr = formula_61(tracked, qubit)
    if backend == "bdd" or backend == "bdd-reversed":
        order = [
            tracked.names[q] for q in range(tracked.circuit.num_qubits)
        ]
        if backend == "bdd-reversed":
            order.reverse()
        bdd = Bdd(order)
        node = bdd.from_expr(expr)
        if bdd.is_false(node):
            return True, None
        return False, bdd.any_sat(node) or {}
    if backend in ("cdcl", "dpll", "brute"):
        encoder = TseitinEncoder()
        encoder.assert_true(expr)
        solver = {
            "cdcl": lambda: CdclSolver(encoder.cnf).solve(),
            "dpll": lambda: DpllSolver(encoder.cnf).solve(),
            "brute": lambda: brute_force_solve(encoder.cnf),
        }[backend]
        result = solver()
        if result.is_unsat:
            return True, None
        return False, encoder.decode_model(result.model)
    raise SolverError(f"unknown backend {backend!r}")


def verify_clean_wires(
    circuit: Circuit,
    clean_wires: Sequence[int],
    backend: str = "cdcl",
) -> VerificationReport:
    """Check every ``alloc`` wire returns to ``|0>`` (given it starts
    there)."""
    started = time.perf_counter()
    tracked = track_circuit(circuit)
    verdicts: List[QubitVerdict] = []
    for wire in clean_wires:
        if not 0 <= wire < circuit.num_qubits:
            raise VerificationError(f"clean wire {wire} outside the register")
        check_start = time.perf_counter()
        clean, model = check_clean_uncomputation(tracked, wire, backend)
        elapsed = time.perf_counter() - check_start
        name = tracked.names[wire]
        if clean:
            verdicts.append(QubitVerdict(wire, name, True, solve_seconds=elapsed))
            continue
        bits = [
            1 if model.get(tracked.names[q], False) else 0
            for q in range(circuit.num_qubits)
        ]
        bits[wire] = 0
        verdicts.append(
            QubitVerdict(
                wire,
                name,
                False,
                failed_condition="zero-restoration",
                counterexample=Counterexample("zero-restoration", model, bits),
                solve_seconds=elapsed,
            )
        )
    return VerificationReport(
        backend=f"{backend} (clean)",
        num_qubits=circuit.num_qubits,
        num_gates=len(circuit.gates),
        verdicts=verdicts,
        total_seconds=time.perf_counter() - started,
    )
