"""Fleet tier: route jobs across many :class:`MultiProgrammer` shards.

One :class:`MultiProgrammer` is one machine.  The paper's Section 7
result — multi-programming raises utilisation — compounds at the next
level up: a *fleet* of machines behind one front door, where placement
(which shard hosts which job) matters as much as packing within a
shard.  :class:`FleetRouter` owns N shards (heterogeneous
``machine_size``, per-shard ``lending``/``lease_packer``/
``queue_policy`` knobs via :class:`ShardSpec`), routes every
``submit()`` through a pluggable :class:`PlacementPolicy`, and keeps
queued work fluid: on every event each shard's own backfill drain runs,
then jobs still queued on one shard are *migrated* to any other shard
that can admit them right now, then the fleet-level overflow queue —
jobs no shard could even hold in its local queue — gets a drain pass.

Placement policies are registered with the same decorator-registry
shape as the allocation strategies, verification backends, queue
policies and lease packers:

* ``least-loaded`` — emptiest shard first (occupancy fraction, ties to
  declaration order): the classic load balancer;
* ``best-fit-width`` — the shard whose *current free pool* fits the
  job most tightly: preserves large contiguous capacity on the other
  shards for wide jobs;
* ``family-affinity`` — route repeat circuits (by fingerprint prefix)
  to the shard that last admitted their family, falling back to
  least-loaded: keeps a family's memoised conflict models and solver
  verdicts hot on one shard.

Two clocks coexist.  The *logical* clocks (one per shard, plus a fleet
event counter) stay authoritative: timeouts passed to ``submit()`` are
logical, so seeded traces replay identically.  *Wall-clock* deadlines
layer on top: ``submit(deadline_s=...)`` stamps an absolute expiry from
an injectable monotonic ``clock=`` callable (``time.monotonic`` by
default; tests inject a fake), evaluated lazily at the start of every
routed event — there is no background thread, so replay stays
deterministic whenever the injected clock is.

All shards share one :class:`~repro.verify.batch.BatchVerifier`
(unless prebuilt programmers are handed in), so solver verdicts and
disk-cache hits memoise *across* the fleet — a family admitted on
shard A verifies for free when migrated to shard B.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.circuits.classical import is_classical_circuit
from repro.errors import CapacityError, CircuitError, VerificationError
from repro.multiprog.scheduler import (
    Admission,
    MultiProgrammer,
    QuantumJob,
)
from repro.registry import make_registry
from repro.verify.batch import BatchVerifier


@dataclass(frozen=True)
class ShardSpec:
    """Constructor knobs for one shard of a fleet.

    A plain ``int`` in ``FleetRouter(shards=[...])`` is shorthand for
    ``ShardSpec(machine_size=that_int)``; a full spec tunes one shard's
    packing behaviour independently of its neighbours (e.g. one
    ``segmented``-lending shard for palindrome-heavy families next to
    a conservative ``whole``-lending shard).
    """

    machine_size: int
    name: Optional[str] = None
    strategy: str = "greedy"
    queue_policy: str = "fifo"
    lending: str = "windowed"
    lease_packer: str = "first-fit"
    #: ``None`` defers to the scheduler's lending-mode default
    #: (``"solver"`` for segmented shards, ``"structural"`` otherwise).
    restore_check: Optional[str] = None


class PlacementPolicy(ABC):
    """Orders the eligible shards for one job, most preferred first."""

    #: Registry name (set by :func:`register_placement`).
    name: str = "?"

    @abstractmethod
    def rank(
        self, job: QuantumJob, shards: Mapping[str, MultiProgrammer]
    ) -> List[str]:
        """Return every key of ``shards`` (all statically eligible for
        ``job``), best host first.  Must be deterministic so seeded
        traces replay identically."""

    def note_admitted(self, job: QuantumJob, shard: str) -> None:
        """Feedback hook: ``job`` was admitted on ``shard``.  Stateful
        policies (family affinity) learn from it; the default is a
        no-op."""


_REGISTRY = make_registry(PlacementPolicy, "placement policy")

#: Class decorator: publish a :class:`PlacementPolicy` under a name.
register_placement = _REGISTRY.register
#: All registered placement-policy names, sorted.
available_placements = _REGISTRY.available
#: Look up a placement class by name (:class:`CircuitError` if absent).
placement_class = _REGISTRY.get
#: Instantiate a registered placement policy with keyword options.
make_placement = _REGISTRY.make


def _declaration_order(shards: Mapping[str, MultiProgrammer]) -> Dict[str, int]:
    return {name: index for index, name in enumerate(shards)}


@register_placement("least-loaded")
class LeastLoadedPlacement(PlacementPolicy):
    """Emptiest shard first, by occupancy fraction."""

    def rank(self, job, shards):
        order = _declaration_order(shards)
        return sorted(
            shards,
            key=lambda name: (
                shards[name].occupancy / shards[name].machine_size,
                order[name],
            ),
        )


@register_placement("best-fit-width")
class BestFitWidthPlacement(PlacementPolicy):
    """Tightest current fit first.

    Shards whose free pool already covers the job's static width floor
    (``reduced_width``) rank by smallest leftover; shards that cannot
    fit it right now follow, closest-to-fitting first — they are still
    worth attempting (lending can admit past the free-pool count) and
    are where the job queues if nothing admits.
    """

    def rank(self, job, shards):
        order = _declaration_order(shards)
        need = job.reduced_width

        def key(name):
            free = shards[name].free_qubits
            if free >= need:
                return (0, free - need, order[name])
            return (1, need - free, order[name])

        return sorted(shards, key=key)


@register_placement("family-affinity")
class FamilyAffinityPlacement(PlacementPolicy):
    """Send repeat circuits to the shard that last hosted their family.

    The family key is a prefix of the circuit's content fingerprint, so
    resubmissions of the same circuit (the common service pattern) land
    where their conflict model and solver verdicts are already
    memoised.  Unknown families fall back to least-loaded.
    """

    def __init__(self, prefix_length: int = 16):
        self.prefix_length = prefix_length
        self._fallback = LeastLoadedPlacement()
        #: family fingerprint prefix -> shard that last admitted it.
        self._affinity: Dict[str, str] = {}

    def _family(self, job: QuantumJob) -> str:
        return job.circuit.fingerprint()[: self.prefix_length]

    def rank(self, job, shards):
        ranked = self._fallback.rank(job, shards)
        preferred = self._affinity.get(self._family(job))
        if preferred in shards:
            ranked.remove(preferred)
            ranked.insert(0, preferred)
        return ranked

    def note_admitted(self, job, shard):
        self._affinity[self._family(job)] = shard


@dataclass
class FleetSubmitOutcome:
    """What :meth:`FleetRouter.submit` did with one job."""

    #: ``"admitted"`` or ``"queued"``.
    status: str
    #: Hosting shard (admitted), queueing shard, or ``None`` for the
    #: fleet-level overflow queue.
    shard: Optional[str] = None
    admission: Optional[Admission] = None
    #: Queued jobs admitted fleet-wide as a side effect of this event
    #: (local drains, migrations and overflow admissions alike).
    backfilled: Tuple[str, ...] = ()

    @property
    def admitted(self) -> bool:
        return self.status == "admitted"


@dataclass
class FleetStats:
    """Lifetime fleet-level routing counters.

    These count *routing* decisions; each shard keeps its own
    :class:`~repro.multiprog.queueing.QueueStats` (exposed under
    ``fleet_stats()["shards"]``) for what happened inside it.  Note the
    double-entry cases: a migration or wall-clock expiry withdraws the
    entry from its shard via ``cancel()``, so shard-level ``cancelled``
    includes fleet-initiated withdrawals.
    """

    submitted: int = 0
    admitted_immediately: int = 0
    #: Queued jobs admitted later by any route: a shard's own drain, a
    #: cross-shard migration, or an overflow drain.
    admitted_from_queue: int = 0
    #: Jobs that left one shard's queue and admitted on another.
    migrations: int = 0
    queued: int = 0
    overflow_queued: int = 0
    overflow_admitted: int = 0
    #: Overflow entries whose *logical* timeout lapsed (fleet events).
    expired: int = 0
    #: Entries withdrawn by a lapsed wall-clock ``deadline_s``.
    deadline_expired: int = 0
    rejected: int = 0
    expired_names: List[str] = field(default_factory=list)
    deadline_expired_names: List[str] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        return self.admitted_immediately + self.admitted_from_queue

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "admitted_immediately": self.admitted_immediately,
            "admitted_from_queue": self.admitted_from_queue,
            "migrations": self.migrations,
            "queued": self.queued,
            "overflow_queued": self.overflow_queued,
            "overflow_admitted": self.overflow_admitted,
            "expired": self.expired,
            "deadline_expired": self.deadline_expired,
            "rejected": self.rejected,
            "expired_names": list(self.expired_names),
            "deadline_expired_names": list(self.deadline_expired_names),
        }


@dataclass
class _OverflowEntry:
    """A job no shard could hold, waiting at the fleet level."""

    job: QuantumJob
    strategy: Optional[str]
    priority: int
    enqueued_event: int
    #: Fleet-event deadline (``submit(timeout=...)``), or ``None``.
    expires_event: Optional[int]

    @property
    def name(self) -> str:
        return self.job.name


class FleetRouter:
    """N machines behind one ``submit()``/``release()`` front door.

    Mirrors the single-machine :class:`MultiProgrammer` surface
    (``submit``/``release``/``cancel``/``residents``/``pending``/
    ``admission``/``stats``/``snapshot``), so trace replay and the
    invariant harness drive either interchangeably; the fleet-only
    surface (``fleet_stats``, ``shard_tables``, ``resident_shards``,
    ``queued_shards``) adds the per-shard view.

    ``shards`` entries may be plain ints (machine sizes), full
    :class:`ShardSpec`\\ s, or prebuilt :class:`MultiProgrammer`\\ s
    (which must be empty and keep their own verifier).

    ``check_invariants=True`` runs an
    :class:`~repro.testing.invariants.OccupancyInvariantChecker` on
    every shard plus the fleet's own routing-consistency check after
    every routed event — the configuration the seeded property traces
    use.
    """

    def __init__(
        self,
        shards: Sequence[Union[int, ShardSpec, MultiProgrammer]],
        placement: Union[str, PlacementPolicy] = "least-loaded",
        backend: str = "bdd",
        max_workers: Optional[int] = None,
        verifier: Optional[BatchVerifier] = None,
        cache_path: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        check_invariants: bool = False,
        memoise_models: bool = True,
    ):
        if not shards:
            raise CircuitError("a fleet needs at least one shard")
        self.verifier = verifier or BatchVerifier(
            backend=backend, max_workers=max_workers, cache_path=cache_path
        )
        self.shards: Dict[str, MultiProgrammer] = {}
        for index, item in enumerate(shards):
            if isinstance(item, MultiProgrammer):
                name, shard = f"shard{index}", item
                if shard.residents or shard.pending():
                    raise CircuitError(
                        f"prebuilt shard {name} must start empty"
                    )
            else:
                spec = (
                    item
                    if isinstance(item, ShardSpec)
                    else ShardSpec(machine_size=item)
                )
                name = spec.name or f"shard{index}"
                shard = MultiProgrammer(
                    spec.machine_size,
                    backend=backend,
                    strategy=spec.strategy,
                    verifier=self.verifier,
                    queue_policy=spec.queue_policy,
                    lending=spec.lending,
                    lease_packer=spec.lease_packer,
                    restore_check=spec.restore_check,
                    memoise_models=memoise_models,
                )
            if name in self.shards:
                raise CircuitError(f"duplicate shard name {name!r}")
            self.shards[name] = shard
        self.placement = (
            placement
            if isinstance(placement, PlacementPolicy)
            else make_placement(placement)
        )
        #: Monotonic wall clock for ``deadline_s`` (injectable).
        self._clock_fn = clock or time.monotonic
        #: Resident job name -> hosting shard name.
        self._resident_on: Dict[str, str] = {}
        #: Shard-queued job name -> its shard, fleet arrival order.
        self._queued_on: Dict[str, str] = {}
        #: Jobs no shard could hold, fleet arrival order.
        self._overflow: List[_OverflowEntry] = []
        #: Queued/overflow job name -> absolute wall-clock expiry.
        self._deadlines: Dict[str, float] = {}
        self._stats = FleetStats()
        #: Fleet logical clock: one tick per routed submit/release.
        self._events = 0
        #: Names backfilled fleet-wide by the most recent event.
        self.last_backfilled: Tuple[str, ...] = ()
        self._shard_checkers: List[object] = []
        self.check_invariants = check_invariants
        if check_invariants:
            # Imported lazily: repro.testing imports repro.multiprog
            # for its generators, so a module-level import would cycle.
            from repro.testing.invariants import OccupancyInvariantChecker

            self._shard_checkers = [
                OccupancyInvariantChecker(shard)
                for shard in self.shards.values()
            ]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def machine_size(self) -> int:
        """Total qubits across the fleet."""
        return sum(shard.machine_size for shard in self.shards.values())

    @property
    def occupancy(self) -> int:
        return sum(shard.occupancy for shard in self.shards.values())

    @property
    def free_qubits(self) -> int:
        return self.machine_size - self.occupancy

    @property
    def residents(self) -> Tuple[str, ...]:
        """Resident names fleet-wide, shard order then admission order."""
        names: List[str] = []
        for shard in self.shards.values():
            names.extend(shard.residents)
        return tuple(names)

    @property
    def events(self) -> int:
        return self._events

    def pending(self) -> Tuple[str, ...]:
        """Queued names fleet-wide: shard queues (fleet arrival order)
        then the overflow queue."""
        return tuple(self._queued_on) + tuple(
            entry.name for entry in self._overflow
        )

    @property
    def queue_length(self) -> int:
        return len(self._queued_on) + len(self._overflow)

    def resident_shards(self) -> Dict[str, str]:
        """Resident job name -> hosting shard name (a copy)."""
        return dict(self._resident_on)

    def queued_shards(self) -> Dict[str, Optional[str]]:
        """Queued job name -> shard name (``None`` = overflow queue)."""
        table: Dict[str, Optional[str]] = dict(self._queued_on)
        for entry in self._overflow:
            table[entry.name] = None
        return table

    def shard_of(self, name: str) -> str:
        """The shard hosting resident job ``name``."""
        try:
            return self._resident_on[name]
        except KeyError:
            raise CircuitError(
                f"no resident job named {name!r} on any shard"
            ) from None

    def admission(self, name: str) -> Admission:
        return self.shards[self.shard_of(name)].admission(name)

    def fleet_stats(self) -> Dict[str, object]:
        """Fleet-level routing counters plus every shard's own stats."""
        data = self._stats.as_dict()
        data["placement"] = self.placement.name
        data["events"] = self._events
        data["machine_size"] = self.machine_size
        data["occupancy"] = self.occupancy
        data["free_qubits"] = self.free_qubits
        data["residents"] = len(self._resident_on)
        data["pending"] = self.queue_length
        data["overflow_pending"] = len(self._overflow)
        data["deadlines_tracked"] = len(self._deadlines)
        data["last_backfilled"] = list(self.last_backfilled)
        data["shards"] = {
            name: shard.stats() for name, shard in self.shards.items()
        }
        return data

    # ``stats()`` aliases the fleet view so trace replay and the bench
    # harness read either tier through one method name.
    stats = fleet_stats

    def shard_tables(self) -> Dict[str, Dict[str, object]]:
        """Per-shard occupancy/lease introspection, one map per shard."""
        return {
            name: {
                "machine_size": shard.machine_size,
                "occupancy": shard.occupancy,
                "free_qubits": shard.free_qubits,
                "residents": list(shard.residents),
                "pending": list(shard.pending()),
                "occupancy_table": shard.occupancy_table(),
                "lease_table": shard.lease_table(),
            }
            for name, shard in self.shards.items()
        }

    def snapshot(self) -> str:
        lines = [
            f"fleet: {len(self.shards)} shards, "
            f"{self.occupancy}/{self.machine_size} qubits busy, "
            f"placement={self.placement.name}"
        ]
        for name, shard in self.shards.items():
            lines.append(f"-- {name} --")
            lines.append(shard.snapshot())
        if self._overflow:
            names = ", ".join(entry.name for entry in self._overflow)
            lines.append(f"overflow: {names}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def submit(
        self,
        job: QuantumJob,
        strategy: Optional[str] = None,
        timeout: Optional[int] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> FleetSubmitOutcome:
        """Admit ``job`` on the best shard, or queue it fleet-wide.

        The placement policy ranks the statically eligible shards
        (those whose ``machine_size`` covers the job's width floor);
        the first that admits hosts the job.  If none admits now, the
        job queues on the best-ranked shard that can hold it — its
        ``timeout`` is in *that shard's* logical events, preserving
        single-machine replay semantics — and every later event may
        migrate it to whichever shard frees capacity first.  If no
        shard can even queue it (every eligible shard is empty yet
        still cannot host it — it needs lending, and lending needs
        co-tenants), it waits in the fleet overflow queue, where
        ``timeout`` counts *fleet* events instead.

        ``deadline_s`` adds a wall-clock bound on queue wait: measured
        with the injected monotonic clock from now, evaluated lazily at
        the start of every routed event, ignored once admitted.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise CircuitError("deadline_s must be positive")
        if timeout is not None and timeout < 1:
            raise CircuitError("timeout must be at least one event")
        if job.name in self._resident_on:
            raise CircuitError(f"job {job.name!r} is already resident")
        if job.name in self._queued_on or any(
            entry.name == job.name for entry in self._overflow
        ):
            raise CircuitError(f"job {job.name!r} is already queued")
        self._event()
        self._stats.submitted += 1
        if job.request_wires and not is_classical_circuit(job.circuit):
            self._stats.rejected += 1
            raise VerificationError(
                f"job {job.name}: only classical circuits can be "
                f"auto-verified for cross-program borrowing"
            )
        eligible = self._eligible(job)
        if not eligible:
            self._stats.rejected += 1
            widest = max(
                shard.machine_size for shard in self.shards.values()
            )
            raise CapacityError(
                f"job {job.name!r} needs at least {job.reduced_width} "
                f"free qubits but the widest shard has {widest}"
            )
        order = self.placement.rank(job, eligible)
        # First pass: immediate admission in placement order.
        for shard_name in order:
            try:
                admission = self.shards[shard_name].admit(
                    job, strategy=strategy
                )
            except CapacityError:
                continue
            self._note_admitted(job, shard_name, immediate=True)
            backfilled = self._redistribute()
            self._check()
            return FleetSubmitOutcome(
                "admitted",
                shard=shard_name,
                admission=admission,
                backfilled=backfilled,
            )
        # Second pass: queue on the best-ranked shard that will hold
        # it.  Every eligible shard's admit just failed, so submit()
        # cannot admit — it queues.  An *empty* shard whose admit
        # failed would reject instead (the single-machine rule: an
        # empty machine that cannot host proves local impossibility),
        # so those are skipped without charging them a submission.
        for shard_name in order:
            if self.shards[shard_name].occupancy == 0:
                continue
            try:
                self.shards[shard_name].submit(
                    job, strategy=strategy, timeout=timeout, priority=priority
                )
            except CapacityError:
                continue
            self._queued_on[job.name] = shard_name
            # The shard's submit ticked its own clock, which may have
            # expired *other* entries queued there — re-sync the map.
            self._sync_shard_queues()
            self._stats.queued += 1
            self._track_deadline(job.name, deadline_s)
            self._check()
            return FleetSubmitOutcome("queued", shard=shard_name)
        # No shard can hold even a queue entry for it right now.  On a
        # completely empty fleet that is a proof of impossibility (no
        # co-tenant will ever lend); otherwise the job waits at the
        # fleet level for lending conditions to change.
        if self.occupancy == 0:
            self._stats.rejected += 1
            raise CapacityError(
                f"job {job.name!r} cannot be hosted by any empty shard "
                f"and the fleet is idle — queueing could never help"
            )
        self._overflow.append(
            _OverflowEntry(
                job=job,
                strategy=strategy,
                priority=priority,
                enqueued_event=self._events,
                expires_event=(
                    None if timeout is None else self._events + timeout
                ),
            )
        )
        self._queue_stats_overflow()
        self._track_deadline(job.name, deadline_s)
        self._check()
        return FleetSubmitOutcome("queued", shard=None)

    def release(self, name: str) -> Tuple[int, ...]:
        """Complete resident job ``name``; returns its shard's freed
        wires.

        The hosting shard's own release runs first (clock tick, expiry,
        local backfill), then the fleet pass: local drains on every
        shard, cross-shard migration of still-queued jobs, and an
        overflow drain.  Everything admitted along the way lands in
        :attr:`last_backfilled` / ``fleet_stats()["last_backfilled"]``.
        """
        self._event()
        shard_name = self._resident_on.get(name)
        if shard_name is None:
            if name in self._queued_on or any(
                entry.name == name for entry in self._overflow
            ):
                raise CircuitError(
                    f"job {name!r} is queued, not resident — use "
                    f"cancel() to withdraw it"
                )
            raise CircuitError(
                f"no resident job named {name!r} on any shard"
            )
        shard = self.shards[shard_name]
        freed = shard.release(name)
        del self._resident_on[name]
        backfilled = list(self._absorb_drained(shard_name))
        backfilled.extend(self._redistribute())
        self.last_backfilled = tuple(backfilled)
        self._check()
        return freed

    def cancel(self, name: str) -> QuantumJob:
        """Withdraw a queued job from its shard queue or the overflow."""
        shard_name = self._queued_on.get(name)
        if shard_name is not None:
            job = self.shards[shard_name].cancel(name)
            del self._queued_on[name]
            self._deadlines.pop(name, None)
            return job
        for entry in self._overflow:
            if entry.name == name:
                self._overflow.remove(entry)
                self._deadlines.pop(name, None)
                return entry.job
        if name in self._resident_on:
            raise CircuitError(
                f"job {name!r} is resident on shard "
                f"{self._resident_on[name]!r}, not queued — use "
                f"release() to complete it"
            )
        raise CircuitError(f"no queued job named {name!r}")

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _eligible(self, job: QuantumJob) -> Dict[str, MultiProgrammer]:
        """Shards whose machine covers the job's static width floor."""
        need = job.reduced_width
        return {
            name: shard
            for name, shard in self.shards.items()
            if need <= shard.machine_size
        }

    def _event(self) -> None:
        """One routed event: tick, reset provenance, expire deadlines."""
        self._events += 1
        self.last_backfilled = ()
        self._expire_overflow()
        self._expire_deadlines()

    def _track_deadline(
        self, name: str, deadline_s: Optional[float]
    ) -> None:
        if deadline_s is not None:
            self._deadlines[name] = self._clock_fn() + deadline_s

    def _expire_overflow(self) -> None:
        """Drop overflow entries whose fleet-event timeout lapsed."""
        for entry in list(self._overflow):
            if (
                entry.expires_event is not None
                and self._events >= entry.expires_event
            ):
                self._overflow.remove(entry)
                self._deadlines.pop(entry.name, None)
                self._stats.expired += 1
                self._stats.expired_names.append(entry.name)

    def _expire_deadlines(self) -> None:
        """Withdraw queued entries whose wall-clock deadline passed."""
        if not self._deadlines:
            return
        now = self._clock_fn()
        for name, expiry in list(self._deadlines.items()):
            if name in self._resident_on:
                # Admitted since: the deadline bounded queue wait only.
                del self._deadlines[name]
                continue
            queued_shard = self._queued_on.get(name)
            in_overflow = any(e.name == name for e in self._overflow)
            if queued_shard is None and not in_overflow:
                # Expired logically or drained away; nothing to bound.
                del self._deadlines[name]
                continue
            if now < expiry:
                continue
            if queued_shard is not None:
                try:
                    self.shards[queued_shard].cancel(name)
                except CircuitError:
                    # The shard dropped it on its own (logical expiry)
                    # between syncs; the wall deadline is then moot.
                    del self._queued_on[name]
                    del self._deadlines[name]
                    continue
                del self._queued_on[name]
            else:
                self._overflow = [
                    e for e in self._overflow if e.name != name
                ]
            del self._deadlines[name]
            self._stats.deadline_expired += 1
            self._stats.deadline_expired_names.append(name)

    def _note_admitted(
        self, job: QuantumJob, shard_name: str, immediate: bool
    ) -> None:
        self._resident_on[job.name] = shard_name
        if immediate:
            self._stats.admitted_immediately += 1
        else:
            self._stats.admitted_from_queue += 1
        self.placement.note_admitted(job, shard_name)

    def _queue_stats_overflow(self) -> None:
        self._stats.queued += 1
        self._stats.overflow_queued += 1

    def _absorb_drained(self, shard_name: str) -> Tuple[str, ...]:
        """Record a shard's just-run drain results in the fleet maps."""
        shard = self.shards[shard_name]
        admitted = shard.last_backfilled
        for name in admitted:
            self._queued_on.pop(name, None)
            self._note_admitted(
                shard.admission(name).job, shard_name, immediate=False
            )
        self._sync_shard_queues()
        return admitted

    def _sync_shard_queues(self) -> None:
        """Reconcile the fleet map with shard queues after their own
        expiry/rejection passes dropped entries."""
        for name, shard_name in list(self._queued_on.items()):
            if name in self._resident_on:
                del self._queued_on[name]
            elif name not in self.shards[shard_name].pending():
                del self._queued_on[name]
                self._deadlines.pop(name, None)

    def _redistribute(self) -> Tuple[str, ...]:
        """Drain every queue tier to a fixpoint; returns admitted names.

        Three passes per round — each shard's own policy drain, then
        cross-shard migration of still-queued jobs, then the overflow
        queue — repeated while any pass admits (an admission can offer
        new lendable wires anywhere in the fleet).
        """
        admitted: List[str] = []
        progress = True
        while progress:
            progress = False
            for shard_name, shard in self.shards.items():
                drained = shard.drain()
                if drained:
                    progress = True
                    admitted.extend(drained)
                self._absorb_drained(shard_name)
            for name in list(self._queued_on):
                if self._migrate(name):
                    progress = True
                    admitted.append(name)
            for entry in list(self._overflow):
                if self._admit_overflow(entry):
                    progress = True
                    admitted.append(entry.name)
        return tuple(admitted)

    def _migrate(self, name: str) -> bool:
        """Try to admit shard-queued job ``name`` on another shard."""
        home = self._queued_on.get(name)
        if home is None:
            return False
        try:
            entry = self.shards[home].queue_entry(name)
        except CircuitError:
            self._sync_shard_queues()
            return False
        for target in self.placement.rank(entry.job, self._eligible(entry.job)):
            if target == home:
                continue
            try:
                self.shards[target].admit(entry.job, strategy=entry.strategy)
            except CapacityError:
                continue
            # Admitted on the target: withdraw the stale queue entry.
            self.shards[home].cancel(name)
            del self._queued_on[name]
            self._deadlines.pop(name, None)
            self._note_admitted(entry.job, target, immediate=False)
            self._stats.migrations += 1
            return True
        return False

    def _admit_overflow(self, entry: _OverflowEntry) -> bool:
        """Try to admit an overflow entry; drop it if provably stuck."""
        for target in self.placement.rank(entry.job, self._eligible(entry.job)):
            try:
                self.shards[target].admit(
                    entry.job, strategy=entry.strategy
                )
            except CapacityError:
                continue
            self._overflow.remove(entry)
            self._deadlines.pop(entry.name, None)
            self._note_admitted(entry.job, target, immediate=False)
            self._stats.overflow_admitted += 1
            return True
        if self.occupancy == 0:
            # The whole fleet is idle and it still fits nowhere: no
            # future lending can help (mirrors the single-machine
            # empty-drain rejection rule).
            self._overflow.remove(entry)
            self._deadlines.pop(entry.name, None)
            self._stats.rejected += 1
        return False

    def _check(self) -> None:
        if not self.check_invariants:
            return
        for checker in self._shard_checkers:
            checker.check()
        self._check_consistency()

    def _check_consistency(self) -> None:
        """The fleet's own silent-state contract, re-derived from the
        shards: routing maps agree with shard reality, nothing lives
        in two places."""
        from repro.errors import InvariantViolation

        seen: Dict[str, str] = {}
        for shard_name, shard in self.shards.items():
            for resident in shard.residents:
                if resident in seen:
                    raise InvariantViolation(
                        f"job {resident!r} resident on both "
                        f"{seen[resident]!r} and {shard_name!r}"
                    )
                seen[resident] = shard_name
        if seen != self._resident_on:
            raise InvariantViolation(
                "fleet resident map out of sync with shard residents: "
                f"{self._resident_on} != {seen}"
            )
        for name, shard_name in self._queued_on.items():
            if name not in self.shards[shard_name].pending():
                raise InvariantViolation(
                    f"job {name!r} tracked as queued on {shard_name!r} "
                    f"but absent from its queue"
                )
            if name in seen:
                raise InvariantViolation(
                    f"job {name!r} both queued and resident"
                )
        for entry in self._overflow:
            if entry.name in seen or entry.name in self._queued_on:
                raise InvariantViolation(
                    f"overflow job {entry.name!r} also lives on a shard"
                )


__all__ = [
    "FleetRouter",
    "FleetStats",
    "FleetSubmitOutcome",
    "PlacementPolicy",
    "ShardSpec",
    "available_placements",
    "make_placement",
    "placement_class",
    "register_placement",
]
