"""Multi-program scheduling with cross-program dirty-qubit borrowing —
system S13, an executable rendering of the paper's Section 7 discussion.

Module tour
-----------

:mod:`repro.multiprog.scheduler`
    The :class:`MultiProgrammer` itself.  Two front doors:

    * :meth:`~MultiProgrammer.admit` — the *online* path: place one
      arriving job against live occupancy (width-reducing it with a
      registered :mod:`repro.alloc` strategy, lazily batch-verifying
      its ancillas, letting verified-safe ones borrow idle co-tenant
      wires) or raise :class:`~repro.errors.CapacityError` when it
      does not fit.  Lending is *time-sliced*: a lent wire carries a
      set of window-disjoint :class:`Lease`\\ s (the guest ancilla's
      gate-index lending :class:`~repro.circuits.intervals.WindowSet`
      mapped onto the machine timeline), so one idle wire multiplexes
      several concurrent guests.  Under ``lending="segmented"`` each
      window carries the restore-point segmentation — a lease covers
      only the ancilla's compute/uncompute segments, and other guests
      thread through the restore gaps; ``lending="windowed"`` keeps
      whole-period windows and ``lending="whole"`` the historical
      one-guest-per-wire rule, both as comparison baselines.  Which
      feasible wire a lease lands on is a registered
      :class:`~repro.multiprog.packing.LeasePacker` (``first-fit`` /
      ``best-fit`` / ``earliest-gap``), selectable per scheduler and
      per admission.  :meth:`~MultiProgrammer.release` retires only
      the releasing guest's leases, and
      :meth:`~MultiProgrammer.lease_table` /
      :meth:`~MultiProgrammer.idle_offers` report per-window
      availability;
    * :meth:`~MultiProgrammer.submit` — the *queueing* path: a
      capacity-rejected arrival waits in an admission queue instead of
      bouncing.  Every :meth:`~MultiProgrammer.release` (and any
      admission that offers new lendable wires) triggers a backfill
      pass that re-attempts queued jobs; queued jobs carry optional
      logical-clock timeouts and can be cancelled; the queue is
      introspectable via :meth:`~MultiProgrammer.pending` and
      :meth:`~MultiProgrammer.stats`.

    The batch :meth:`~MultiProgrammer.schedule` replays a whole job
    list through the online path and compacts it into one composite
    circuit — byte-for-byte the seed scheduler's result.

    Two admission-cost knobs ride along: interval-conflict models are
    **memoised** by ``(circuit fingerprint, request wires)``
    (``memoise_models``, on by default — a queued job re-tried at every
    release event builds its model once; hits/misses surface in
    :meth:`~MultiProgrammer.stats`), and ``restore_check="solver"``
    swaps the structural palindrome certifier for a shared memoised
    :func:`~repro.circuits.intervals.solver_restore_checker`, so
    segmented lending also splits windows at *semantic* (non-mirror)
    identity blocks.

:mod:`repro.multiprog.queueing`
    The pluggable queue-policy layer, a decorator registry mirroring
    the allocation strategies and verification backends:
    ``fifo`` (strict head-of-line — admission order equals arrival
    order, at the price of head-of-line blocking), ``backfill``
    (out-of-order — any queued job that fits *now* is admitted, so a
    narrow late arrival can slip past a blocked wide head), ``sjf``
    (narrowest reduced width first) and ``priority`` (highest
    ``submit(..., priority=…)`` first).

:mod:`repro.multiprog.packing`
    The pluggable lease-packing layer: a :class:`LeasePacker` decides
    which feasible offered wire a new cross-program lease lands on —
    ``first-fit`` (smallest index), ``best-fit`` (most-loaded wire)
    or ``earliest-gap`` (tightest fit after the preceding lease).

:mod:`repro.multiprog.fleet`
    The fleet tier: a :class:`FleetRouter` owns N
    :class:`MultiProgrammer` shards (heterogeneous sizes and knobs via
    :class:`ShardSpec`, one shared verifier as the cross-shard memo
    tier) behind one ``submit()``/``release()`` front door.  A
    registered :class:`PlacementPolicy` (``least-loaded`` /
    ``best-fit-width`` / ``family-affinity`` by circuit-fingerprint
    prefix) ranks the shards per job; jobs that cannot run now queue
    on their best shard, *migrate* to whichever shard frees capacity
    first, or wait in a fleet-level overflow queue.  Wall-clock
    ``deadline_s`` expiry (injectable monotonic clock, evaluated
    lazily per event) layers over the authoritative logical clocks;
    ``fleet_stats()`` / ``shard_tables()`` mirror the single-machine
    introspection at fleet scale.

:mod:`repro.multiprog.service`
    The burst boundary: :class:`FleetService` buffers ``enqueue()``
    bursts and routes them through the fleet in arrival order on
    ``flush()`` (optionally auto-flushing at ``batch_size``), turning
    per-job failures into recorded results instead of burst-shedding
    exceptions — the seam where a future async/RPC front end plugs in.

Safety is non-negotiable throughout: a job's dirty ancilla may borrow
an idle qubit *from another job* only when it is verified safely
uncomputed (Definition 3.1 via the Section 6 pipeline) — an unverified
borrow could corrupt a co-tenant's state, the failure mode the paper
warns about in multi-programming clouds.  The randomized harness in
:mod:`repro.testing` replays seeded workload traces through
submit/release/backfill and asserts the global occupancy contract
after every event.
"""

from repro.multiprog.fleet import (
    FleetRouter,
    FleetStats,
    FleetSubmitOutcome,
    PlacementPolicy,
    ShardSpec,
    available_placements,
    make_placement,
    placement_class,
    register_placement,
)
from repro.multiprog.packing import (
    BestFitPacker,
    EarliestGapPacker,
    FirstFitPacker,
    LeasePacker,
    available_packers,
    make_packer,
    packer_class,
    register_packer,
)
from repro.multiprog.queueing import (
    BackfillPolicy,
    FifoPolicy,
    PriorityPolicy,
    QueueEntry,
    QueuePolicy,
    QueueStats,
    ShortestJobFirstPolicy,
    SubmitOutcome,
    available_policies,
    make_policy,
    policy_class,
    register_policy,
)
from repro.multiprog.scheduler import (
    Admission,
    BorrowRequest,
    Lease,
    MultiProgrammer,
    QuantumJob,
    ScheduleResult,
    StreamAdmission,
)
from repro.multiprog.service import FleetService, ServiceResult

__all__ = [
    "Admission",
    "BackfillPolicy",
    "BestFitPacker",
    "BorrowRequest",
    "EarliestGapPacker",
    "FifoPolicy",
    "FirstFitPacker",
    "FleetRouter",
    "FleetService",
    "FleetStats",
    "FleetSubmitOutcome",
    "Lease",
    "LeasePacker",
    "MultiProgrammer",
    "PlacementPolicy",
    "PriorityPolicy",
    "QuantumJob",
    "QueueEntry",
    "QueuePolicy",
    "QueueStats",
    "ScheduleResult",
    "ServiceResult",
    "ShardSpec",
    "ShortestJobFirstPolicy",
    "StreamAdmission",
    "SubmitOutcome",
    "available_packers",
    "available_placements",
    "available_policies",
    "make_packer",
    "make_placement",
    "make_policy",
    "packer_class",
    "placement_class",
    "policy_class",
    "register_packer",
    "register_placement",
    "register_policy",
]
