"""Multi-program scheduling with cross-program dirty-qubit borrowing —
system S13, an executable rendering of the paper's Section 7 discussion.

A :class:`~repro.multiprog.scheduler.MultiProgrammer` packs quantum
jobs onto one machine *online*: :meth:`admit` places each arriving job
against live occupancy (width-reducing it with a registered
:mod:`repro.alloc` strategy, lazily batch-verifying its ancillas, and
letting safe ones borrow idle co-tenant wires), and :meth:`release`
returns a finished job's wires to the pool.  A job that needs dirty
ancillas may borrow idle qubits *from other jobs*, but only when the
ancilla is verified safely uncomputed (Definition 3.1 via the Section 6
pipeline) — an unverified borrow could corrupt a co-tenant's state, the
failure mode the paper warns about in multi-programming clouds.  The
batch :meth:`schedule` replays a whole job list through the online path
and compacts it into one composite circuit.
"""

from repro.multiprog.scheduler import (
    Admission,
    BorrowRequest,
    MultiProgrammer,
    QuantumJob,
    ScheduleResult,
)

__all__ = [
    "Admission",
    "BorrowRequest",
    "MultiProgrammer",
    "QuantumJob",
    "ScheduleResult",
]
