"""Multi-program scheduling with cross-program dirty-qubit borrowing —
system S13, an executable rendering of the paper's Section 7 discussion.

A :class:`~repro.multiprog.scheduler.MultiProgrammer` co-schedules
several quantum jobs on one machine.  A job that needs dirty ancillas may
borrow idle qubits *from other jobs*, but only when the ancilla is
verified safely uncomputed (Definition 3.1 via the Section 6 pipeline) —
an unverified borrow could corrupt a co-tenant's state, the failure mode
the paper warns about in multi-programming clouds.
"""

from repro.multiprog.scheduler import (
    BorrowRequest,
    MultiProgrammer,
    QuantumJob,
    ScheduleResult,
)

__all__ = [
    "BorrowRequest",
    "MultiProgrammer",
    "QuantumJob",
    "ScheduleResult",
]
