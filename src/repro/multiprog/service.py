"""A batching service front end over the fleet router.

A live service does not see one call at a time — it sees *bursts*.
:class:`FleetService` is the thin ingestion layer the ROADMAP's
scheduler-service item asks for: callers ``enqueue()`` jobs without
blocking on placement, and a ``flush()`` routes the whole burst through
the underlying :class:`~repro.multiprog.fleet.FleetRouter` in arrival
order, mapping per-job failures to recorded outcomes instead of
exceptions (one poisoned job in a burst must not lose the rest).
``batch_size`` turns on auto-flush; ``submit()``/``release()`` remain
available as synchronous pass-throughs that first flush anything
buffered, so interleaving batched and direct calls preserves arrival
order.  ``status()`` is the JSON-friendly operator view (fleet stats,
per-shard tables, buffered count).

The service deliberately holds no scheduling intelligence: placement,
migration, deadlines and invariants all live in the router.  This
layer is only the burst boundary — the natural seam for a future
async/event-loop or RPC front end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, CircuitError, VerificationError
from repro.multiprog.fleet import FleetRouter, FleetSubmitOutcome
from repro.multiprog.scheduler import QuantumJob


@dataclass
class ServiceResult:
    """What the service did with one enqueued job at flush time."""

    name: str
    #: ``"admitted"``, ``"queued"``, or ``"rejected"``.
    status: str
    #: The router outcome (absent for rejections).
    outcome: Optional[FleetSubmitOutcome] = None
    #: The rejection message (absent otherwise).
    error: Optional[str] = None

    @property
    def admitted(self) -> bool:
        return self.status == "admitted"


class FleetService:
    """Burst-oriented front door over a :class:`FleetRouter`.

    Construct over an existing router, or let the service build one:
    ``FleetService(shards=[11, 11], placement="best-fit-width")``.
    """

    def __init__(
        self,
        router: Optional[FleetRouter] = None,
        *,
        shards=None,
        batch_size: Optional[int] = None,
        **router_options,
    ):
        if router is None:
            if shards is None:
                raise CircuitError(
                    "FleetService needs a router or shards to build one"
                )
            router = FleetRouter(shards, **router_options)
        elif shards is not None or router_options:
            raise CircuitError(
                "pass either a prebuilt router or its construction "
                "options, not both"
            )
        if batch_size is not None and batch_size < 1:
            raise CircuitError("batch_size must be at least 1")
        self.router = router
        self.batch_size = batch_size
        #: (job, submit options) in arrival order, awaiting a flush.
        self._buffer: List[Tuple[QuantumJob, Dict[str, object]]] = []
        #: Every flush's results, newest last (bounded by caller use).
        self.results: List[ServiceResult] = []

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def enqueue(
        self,
        job: QuantumJob,
        strategy: Optional[str] = None,
        timeout: Optional[int] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> int:
        """Buffer a job for the next flush; returns its burst position.

        With ``batch_size`` set, reaching it triggers an auto-flush.
        """
        if any(queued.name == job.name for queued, _ in self._buffer):
            raise CircuitError(f"job {job.name!r} is already buffered")
        self._buffer.append(
            (
                job,
                {
                    "strategy": strategy,
                    "timeout": timeout,
                    "priority": priority,
                    "deadline_s": deadline_s,
                },
            )
        )
        position = len(self._buffer) - 1
        if self.batch_size is not None and len(self._buffer) >= self.batch_size:
            self.flush()
        return position

    def flush(self) -> List[ServiceResult]:
        """Route every buffered job, in arrival order; returns results.

        Rejections (static width, unverifiable circuit, bad options)
        become ``"rejected"`` results rather than exceptions, so one
        bad job cannot shed the rest of its burst.
        """
        burst, self._buffer = self._buffer, []
        flushed: List[ServiceResult] = []
        for job, options in burst:
            try:
                outcome = self.router.submit(job, **options)
            except (CapacityError, VerificationError, CircuitError) as exc:
                flushed.append(
                    ServiceResult(job.name, "rejected", error=str(exc))
                )
            else:
                flushed.append(
                    ServiceResult(job.name, outcome.status, outcome=outcome)
                )
        self.results.extend(flushed)
        return flushed

    def submit(self, job: QuantumJob, **options) -> FleetSubmitOutcome:
        """Synchronous pass-through; flushes the buffer first so this
        job cannot overtake an earlier enqueued burst."""
        self.flush()
        return self.router.submit(job, **options)

    def release(self, name: str) -> Tuple[int, ...]:
        """Complete a resident job (buffer flushed first: the job may
        still be sitting in it)."""
        self.flush()
        return self.router.release(name)

    def cancel(self, name: str) -> QuantumJob:
        """Withdraw a job from the buffer (pre-flush) or the fleet."""
        for pair in self._buffer:
            if pair[0].name == name:
                self._buffer.remove(pair)
                return pair[0]
        return self.router.cancel(name)

    def status(self) -> Dict[str, object]:
        """JSON-friendly operator view of the whole stack."""
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return {
            "buffered": self.buffered,
            "batch_size": self.batch_size,
            "flushed_results": counts,
            "fleet": self.router.fleet_stats(),
        }


__all__ = ["FleetService", "ServiceResult"]
