"""Pluggable lease-packing policies for the online multi-programmer.

When a verified-safe guest ancilla needs a cross-program host, the
scheduler first computes the *feasible* offered wires — under
``lending="whole"`` the lease-free offers, otherwise every offer whose
existing leases are all window-set-disjoint from the new window — and
then asks a :class:`LeasePacker` to pick one.  The packer is therefore
a pure preference policy over already-feasible wires (disjointness is
enforced once, in the scheduler), registered with the same decorator
registry shape as the allocation strategies, verification backends and
queue policies:

* ``first-fit`` — the smallest-index feasible wire: the historical
  behaviour, O(1) per choice, spreads early guests across offers;
* ``best-fit`` — the feasible wire already carrying the most leased
  rounds: concentrates guests on few wires, keeping the others
  lease-free for guests (and whole-residency tenants) that cannot
  share;
* ``earliest-gap`` — the feasible wire whose latest lease before the
  new window ends last: packs each new lease tightly against its
  predecessor, leaving the largest contiguous gaps open for later,
  wider windows.

All three are deterministic (ties break to the smallest wire index), so
seeded traces replay identically under any fixed packer.  The policy is
selectable per scheduler (``MultiProgrammer(lease_packer=...)``) and
per admission (``admit(job, packer=...)``); the lending benchmark
replays the same trace under each to make them comparable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Optional, Sequence

from repro.circuits.intervals import WindowSet
from repro.registry import make_registry


class LeasePacker(ABC):
    """Chooses which feasible offered wire hosts a new lease window."""

    #: Registry name (set by :func:`register_packer`).
    name: str = "?"

    @abstractmethod
    def choose(
        self,
        window: WindowSet,
        offers: Mapping[int, Sequence],
    ) -> Optional[int]:
        """Pick one wire from ``offers`` (wire -> its current leases,
        every entry already feasible for ``window``), or ``None`` when
        there is nothing to pick.  Must be deterministic."""


_REGISTRY = make_registry(LeasePacker, "lease packer")

#: Class decorator: publish a :class:`LeasePacker` under a name.
register_packer = _REGISTRY.register
#: All registered lease-packer names, sorted.
available_packers = _REGISTRY.available
#: Look up a packer class by name (:class:`CircuitError` if absent).
packer_class = _REGISTRY.get
#: Instantiate a registered packer with keyword options.
make_packer = _REGISTRY.make


@register_packer("first-fit")
class FirstFitPacker(LeasePacker):
    """Smallest-index feasible wire — the historical rule."""

    def choose(self, window, offers):
        return min(offers) if offers else None


@register_packer("best-fit")
class BestFitPacker(LeasePacker):
    """Most-loaded feasible wire (by total leased rounds).

    The cross-program analogue of the interval-graph strategy's
    most-loaded-host preference: piling window-disjoint guests onto one
    wire leaves whole wires lease-free for guests that cannot share.
    """

    def choose(self, window, offers):
        if not offers:
            return None
        return min(
            offers,
            key=lambda wire: (
                -sum(lease.window.length for lease in offers[wire]),
                wire,
            ),
        )


@register_packer("earliest-gap")
class EarliestGapPacker(LeasePacker):
    """Feasible wire with the smallest idle gap before the new window.

    Ranks wires by the end of their latest lease segment that still
    precedes ``window`` (later is better — the new lease sits tightly
    after it), so fragmentation concentrates where windows already are
    and the long empty runs stay intact for later, wider windows.  A
    wire with no lease before the window ranks last.
    """

    def choose(self, window, offers):
        if not offers:
            return None

        def gap_rank(wire: int):
            preceding = [
                seg.last
                for lease in offers[wire]
                for seg in lease.window.segments
                if seg.last < window.first
            ]
            return (-(max(preceding) if preceding else -1), wire)

        return min(offers, key=gap_rank)


__all__ = [
    "BestFitPacker",
    "EarliestGapPacker",
    "FirstFitPacker",
    "LeasePacker",
    "available_packers",
    "make_packer",
    "packer_class",
    "register_packer",
]
