"""Co-scheduling quantum jobs with verified cross-program borrowing.

The model: each job is a circuit over its own wires, some of which are
declared *dirty-ancilla requests*.  The scheduler

1. verifies each requested ancilla is safely uncomputed in its own job
   (Section 6 pipeline) — an unsafe ancilla is never borrowed across a
   program boundary, only hosted on a private wire;
2. merges the jobs into one composite circuit, interleaving gates
   round-robin to model concurrent execution on the machine;
3. runs the Figure 3.1 borrowing pass on the composite, letting a safe
   ancilla land on *any* co-tenant qubit that is idle during its period;
4. reports the width saved and rejects schedules exceeding the machine.

This turns the paper's Section 7 discussion (QuCloud-style
multi-programming with dirty qubits) into executable, testable policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.borrowing import BorrowPlan, borrow_dirty_qubits
from repro.circuits.circuit import Circuit
from repro.circuits.classical import is_classical_circuit
from repro.errors import CircuitError, VerificationError
from repro.verify.batch import BatchVerifier, VerificationJob


@dataclass(frozen=True)
class BorrowRequest:
    """One dirty-ancilla wire a job would like to outsource."""

    wire: int


@dataclass
class QuantumJob:
    """A workload submitted to the multi-programmer."""

    name: str
    circuit: Circuit
    ancilla_requests: List[BorrowRequest] = field(default_factory=list)

    def __post_init__(self):
        for request in self.ancilla_requests:
            if not 0 <= request.wire < self.circuit.num_qubits:
                raise CircuitError(
                    f"job {self.name}: ancilla wire {request.wire} outside "
                    f"the circuit"
                )


@dataclass
class ScheduleResult:
    """Outcome of :meth:`MultiProgrammer.schedule`."""

    composite: Circuit
    plan: BorrowPlan
    job_offsets: Dict[str, int]
    safety: Dict[Tuple[str, int], bool]
    naive_width: int
    final_width: int
    machine_size: int

    @property
    def qubits_saved(self) -> int:
        return self.naive_width - self.final_width

    @property
    def fits_machine(self) -> bool:
        return self.final_width <= self.machine_size

    def summary(self) -> str:
        lines = [
            f"machine={self.machine_size} naive_width={self.naive_width} "
            f"final_width={self.final_width} saved={self.qubits_saved}",
        ]
        for (job, wire), safe in sorted(self.safety.items()):
            verdict = "safe" if safe else "UNSAFE (kept private)"
            lines.append(f"  {job} ancilla wire {wire}: {verdict}")
        return "\n".join(lines)


class MultiProgrammer:
    """Packs jobs onto one machine with verified dirty-qubit borrowing."""

    def __init__(
        self,
        machine_size: int,
        backend: str = "bdd",
        max_workers: Optional[int] = None,
        verifier: Optional[BatchVerifier] = None,
    ):
        if machine_size < 1:
            raise CircuitError("machine must have at least one qubit")
        self.machine_size = machine_size
        self.backend = backend
        # One engine for the scheduler's lifetime: ancilla verdicts are
        # memoised by circuit fingerprint, so re-submitting a job (the
        # steady state of a borrow-at-schedule-time service) costs no
        # solver runs after the first schedule.
        self.verifier = verifier or BatchVerifier(
            backend=backend, max_workers=max_workers
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def schedule(
        self, jobs: Sequence[QuantumJob], require_fit: bool = True
    ) -> ScheduleResult:
        """Merge, verify, and borrow; raises if the result exceeds the
        machine and ``require_fit`` is set."""
        if not jobs:
            raise CircuitError("no jobs to schedule")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise CircuitError("duplicate job names")

        safety = self._verify_ancillas(jobs)
        composite, offsets = self._merge(jobs)
        borrowable = [
            offsets[job.name] + request.wire
            for job in jobs
            for request in job.ancilla_requests
            if safety[(job.name, request.wire)]
        ]
        plan = borrow_dirty_qubits(composite, borrowable)
        result = ScheduleResult(
            composite=plan.circuit,
            plan=plan,
            job_offsets=offsets,
            safety=safety,
            naive_width=composite.num_qubits,
            final_width=plan.final_width,
            machine_size=self.machine_size,
        )
        if require_fit and not result.fits_machine:
            raise CircuitError(
                f"schedule needs {result.final_width} qubits but the "
                f"machine has {self.machine_size}"
            )
        return result

    # ------------------------------------------------------------------ #
    # Steps
    # ------------------------------------------------------------------ #

    def _verify_ancillas(
        self, jobs: Sequence[QuantumJob]
    ) -> Dict[Tuple[str, int], bool]:
        """Verify every requested ancilla in one batch-engine call."""
        requesting: List[QuantumJob] = []
        for job in jobs:
            if not job.ancilla_requests:
                continue
            if not is_classical_circuit(job.circuit):
                raise VerificationError(
                    f"job {job.name}: only classical circuits can be "
                    f"auto-verified for cross-program borrowing"
                )
            requesting.append(job)
        reports = self.verifier.verify_circuits(
            VerificationJob(
                job.circuit,
                tuple(request.wire for request in job.ancilla_requests),
            )
            for job in requesting
        )
        safety: Dict[Tuple[str, int], bool] = {}
        for job, report in zip(requesting, reports):
            for verdict in report.verdicts:
                safety[(job.name, verdict.qubit)] = verdict.safe
        return safety

    def _merge(
        self, jobs: Sequence[QuantumJob]
    ) -> Tuple[Circuit, Dict[str, int]]:
        """Round-robin interleave jobs onto disjoint wire ranges."""
        offsets: Dict[str, int] = {}
        labels: List[str] = []
        total = 0
        for job in jobs:
            offsets[job.name] = total
            for w in range(job.circuit.num_qubits):
                labels.append(f"{job.name}.{job.circuit.label_of(w)}")
            total += job.circuit.num_qubits
        composite = Circuit(total, labels=labels)
        cursors = [0] * len(jobs)
        remaining = sum(len(job.circuit.gates) for job in jobs)
        while remaining:
            for idx, job in enumerate(jobs):
                if cursors[idx] >= len(job.circuit.gates):
                    continue
                gate = job.circuit.gates[cursors[idx]]
                shift = offsets[job.name]
                composite.append(
                    gate.remap({q: q + shift for q in gate.qubits})
                )
                cursors[idx] += 1
                remaining -= 1
        return composite, offsets
