"""Online multi-programming with verified cross-program borrowing.

The model: each job is a circuit over its own wires, some of which are
declared *dirty-ancilla requests*.  Jobs arrive over time
(QuCloud-style, the paper's Section 7 scenario):

* :meth:`MultiProgrammer.admit` places one arriving job against the
  machine's *live occupancy* — its circuit is first width-reduced by a
  registered allocation strategy (:mod:`repro.alloc`), then any safe
  ancilla still unplaced may borrow an idle wire a resident co-tenant
  lends out;
* lending is **time-sliced**: a lent wire carries a set of
  non-overlapping :class:`Lease`\\ s rather than a single guest.  Each
  lease covers exactly the ancilla's *lending window* — a
  :class:`~repro.circuits.intervals.WindowSet` of disjoint gate-index
  segments, straight from the interval model — mapped onto the machine
  timeline by the composite-interleave convention: every resident
  advances one gate per logical event round, so a job admitted at
  round ``t`` occupies a lent wire during ``window.shifted(t)``.  A
  new guest may therefore land on a wire that is *already lent out*,
  as long as its window set is disjoint from every existing lease.
  Under ``lending="segmented"`` the windows carry the restore-point
  segmentation (:func:`~repro.circuits.intervals.restore_segments`) —
  an ancilla idle *and restored* between its compute/uncompute
  segments releases the wire in the gap, so other guests interleave
  through it; ``lending="windowed"`` keeps whole-period windows and
  ``lending="whole"`` the historical one-guest-per-wire rule, both as
  measured baselines.  Which feasible wire a new lease lands on is a
  registered :class:`~repro.multiprog.packing.LeasePacker` policy
  (``first-fit`` / ``best-fit`` / ``earliest-gap``), selectable per
  scheduler and per admission;
* verification is *lazy*: only ancillas with a candidate host (their
  own circuit's, or an offered co-tenant wire) pay solver time, in one
  batched :class:`~repro.verify.batch.BatchVerifier` call per
  admission, memoised for the scheduler's lifetime;
* :meth:`MultiProgrammer.release` returns a completed job's wires to
  the pool and retires *only that guest's* leases; wires lent to
  still-resident guests stay occupied until the last guest finishes;
* a policy knob picks the allocation strategy per admission, so light
  jobs can take greedy while width-critical ones pay for lookahead;
* :meth:`MultiProgrammer.submit` is the queueing front door: an arrival
  that does not fit *waits* (instead of bouncing), and every release —
  or any admission that creates new lendable wires — triggers a drain
  pass that re-attempts queued jobs under a registered
  :class:`~repro.multiprog.queueing.QueuePolicy` (``fifo`` strict
  head-of-line vs ``backfill`` out-of-order).  Queued jobs carry
  optional logical-clock timeouts, can be cancelled, and the queue is
  fully introspectable (:meth:`pending`, :meth:`stats`).

The historical batch entry point, :meth:`MultiProgrammer.schedule`, is
a thin replay over the online path: it admits every job in arrival
order on a fresh machine (sharing the memoising verifier), then merges
the batch into one composite circuit and runs the Figure 3.1 pass over
it — byte-for-byte the seed scheduler's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.alloc import (
    BorrowPlan,
    ConflictModel,
    LookaheadPolicy,
    StreamingAllocator,
    allocate,
    build_model,
)
from repro.circuits.circuit import Circuit
from repro.circuits.classical import is_classical_circuit
from repro.circuits.gates import Gate
from repro.circuits.intervals import (
    SegmentCheck,
    WindowSet,
    solver_restore_checker,
)
from repro.errors import CapacityError, CircuitError, VerificationError
from repro.multiprog.packing import LeasePacker, make_packer
from repro.multiprog.queueing import (
    QueueEntry,
    QueuePolicy,
    QueueStats,
    SubmitOutcome,
    make_policy,
)
from repro.verify.batch import BatchVerifier

#: Lending modes, loosest first: ``segmented`` leases restore-point
#: window sets, ``windowed`` leases whole-period windows, ``whole``
#: dedicates a lent wire to one guest for its entire residency.
LENDING_MODES = ("segmented", "windowed", "whole")


@dataclass(frozen=True)
class BorrowRequest:
    """One dirty-ancilla wire a job would like to outsource.

    ``certified`` marks a wire whose (6.1)/(6.2) safety was already
    proven statically — by the surface language's borrow checker
    (:func:`repro.lang.surface.elaborate.job_from_qbr` sets it from
    ``proven_wires``).  The scheduler treats a certified wire as safe
    without issuing a :class:`~repro.verify.batch.BatchVerifier`
    obligation and counts the skip in ``stats()['static_discharged']``.
    """

    wire: int
    certified: bool = False


@dataclass(frozen=True)
class Lease:
    """One time-sliced tenancy of a guest ancilla on a lent wire.

    ``window`` is a :class:`WindowSet` expressed in *machine rounds* —
    the composite interleave executes one gate per resident per logical
    event round, so a guest admitted at round ``t`` whose ancilla has
    lending window ``w`` in its own circuit touches the wire exactly
    during ``w.shifted(t)``.  Under segmented lending the set carries
    several segments and the lease covers *only* those: the restore
    gaps between them are free rounds any other lease may use.  The
    scheduler admits a new lease onto a wire only when its window set
    is disjoint from every lease already on that wire, which is what
    lets one idle wire serve several concurrent guests.
    """

    guest: str
    ancilla: int
    wire: int
    window: WindowSet

    def overlaps(self, other: "Lease") -> bool:
        """True when the two leases compete for the same rounds."""
        return self.window.overlaps(other.window)

    def __str__(self) -> str:
        return (
            f"{self.guest}:a{self.ancilla} on m{self.wire} "
            f"rounds {self.window}"
        )


@dataclass
class QuantumJob:
    """A workload submitted to the multi-programmer."""

    name: str
    circuit: Circuit
    ancilla_requests: List[BorrowRequest] = field(default_factory=list)

    def __post_init__(self):
        for request in self.ancilla_requests:
            if not 0 <= request.wire < self.circuit.num_qubits:
                raise CircuitError(
                    f"job {self.name}: ancilla wire {request.wire} outside "
                    f"the circuit"
                )

    @property
    def request_wires(self) -> Tuple[int, ...]:
        return tuple(r.wire for r in self.ancilla_requests)

    @property
    def reduced_width(self) -> int:
        """Floor on the job's fresh-qubit need: each requested ancilla
        can save at most one fresh wire (removed internally or
        cross-borrowed), so the wire count minus the requests bounds
        what any placement can achieve.  The submit fail-fast and the
        ``sjf`` queue policy both key off this."""
        return self.circuit.num_qubits - len(self.ancilla_requests)


@dataclass
class Admission:
    """Outcome of :meth:`MultiProgrammer.admit` — one resident job.

    Attributes
    ----------
    name / job:
        The admitted workload.
    plan:
        The job's internal width-reduction (:class:`BorrowPlan`) under
        the admission's strategy.
    wires:
        Machine wire of each reduced-circuit wire, in wire order.
    cross_hosts:
        Original ancilla wire -> machine wire borrowed from a resident
        co-tenant (ancillas the internal pass could not place).
    leases:
        Original ancilla wire -> the :class:`Lease` recording the
        gate-round window that borrow occupies on the machine timeline
        (same keys as ``cross_hosts``).
    gate_offset:
        Machine round this admission's gate 0 executes at (the logical
        clock at admission) — the offset its lending windows were
        shifted by.
    safety:
        Verified verdicts, by original ancilla wire.  Ancillas skipped
        by lazy verification (no candidate host anywhere) are absent.
    seq:
        Arrival number, for deterministic accounting.
    strategy:
        Allocation strategy used for this admission.
    """

    name: str
    job: QuantumJob
    plan: BorrowPlan
    wires: Tuple[int, ...]
    cross_hosts: Dict[int, int]
    safety: Dict[int, bool]
    seq: int
    strategy: str
    leases: Dict[int, Lease] = field(default_factory=dict)
    gate_offset: int = 0

    @property
    def fresh_wires(self) -> Tuple[int, ...]:
        """Machine wires taken from the free pool (not borrowed)."""
        borrowed = set(self.cross_hosts.values())
        return tuple(w for w in self.wires if w not in borrowed)

    @property
    def qubits_saved(self) -> int:
        """Free-pool qubits this job did not need, versus naive width."""
        return self.job.circuit.num_qubits - len(self.fresh_wires)

    def wire_of(self, original: int) -> int:
        """Machine wire an original job wire ended up on."""
        if original in self.cross_hosts:
            return self.cross_hosts[original]
        target = original
        if target in self.plan.assignment:
            target = self.plan.assignment[target]
        if target not in self.plan.wire_map:
            raise CircuitError(
                f"wire {original} of job {self.name} was eliminated"
            )
        return self.wires[self.plan.wire_map[target]]

    def summary(self) -> str:
        parts = [
            f"{self.name}: {self.job.circuit.num_qubits} wires -> "
            f"{len(self.fresh_wires)} fresh"
        ]
        if self.cross_hosts:
            borrows = ", ".join(
                f"a{a}->m{w}" for a, w in sorted(self.cross_hosts.items())
            )
            parts.append(f"borrowed [{borrows}]")
        return " ".join(parts)


@dataclass
class ScheduleResult:
    """Outcome of the batch :meth:`MultiProgrammer.schedule`."""

    composite: Circuit
    plan: BorrowPlan
    job_offsets: Dict[str, int]
    safety: Dict[Tuple[str, int], bool]
    naive_width: int
    final_width: int
    machine_size: int
    admissions: Optional[List[Admission]] = None

    @property
    def qubits_saved(self) -> int:
        return self.naive_width - self.final_width

    @property
    def fits_machine(self) -> bool:
        return self.final_width <= self.machine_size

    def summary(self) -> str:
        lines = [
            f"machine={self.machine_size} naive_width={self.naive_width} "
            f"final_width={self.final_width} saved={self.qubits_saved}",
        ]
        for (job, wire), safe in sorted(self.safety.items()):
            verdict = "safe" if safe else "UNSAFE (kept private)"
            lines.append(f"  {job} ancilla wire {wire}: {verdict}")
        return "\n".join(lines)


class StreamAdmission:
    """A prefix-admitted gate stream: resident now, still arriving.

    Returned by :meth:`MultiProgrammer.admit_stream`.  The job became
    resident on the strength of its *prefix* — the gates fed before
    admission — and every later :meth:`feed` refines the admission in
    the same call, so the scheduler-wide occupancy contract
    (:class:`~repro.testing.invariants.OccupancyInvariantChecker`)
    holds between any two feeds:

    * a gate that touches a leased ancilla regrows that ancilla's
      lending window from the job's live
      :class:`~repro.alloc.StreamingAllocator`; the lease is replaced
      in place when the extension stays disjoint from its wire's other
      leases, *moved* to another offered wire when not, *revoked to a
      fresh wire* when no offer fits, and — with the free pool also
      exhausted — the whole job is **revoked to the queue**: residency
      ends, its wires return, and :meth:`close` resubmits the complete
      circuit through :meth:`MultiProgrammer.submit`;
    * the admission's internal placement is refreshed from the
      allocator after every gate (leased and unverified ancillas stay
      out of it), so the plan revalidates against a freshly rebuilt
      interval model at any point.

    Prefix admission is deliberately *optimistic*: safety verdicts are
    proven on the prefix (or carried by ``certified`` requests) and
    re-proven on the full circuit at :meth:`close`, which revokes any
    lease whose safety the tail broke.  A stream job offers no idle
    wires of its own — wires that look idle in the prefix may be busy
    one gate later.
    """

    def __init__(
        self,
        scheduler: "MultiProgrammer",
        job: QuantumJob,
        allocator: StreamingAllocator,
        packer: LeasePacker,
    ):
        self._mp = scheduler
        self.job = job
        #: The live online allocator; its ``stats`` carry the stream's
        #: throughput counters (gates, commits, re-plans, rollbacks).
        self.allocator = allocator
        self._packer = packer
        #: The live admission, ``None`` once revoked to the queue.
        self.admission: Optional[Admission] = None
        #: Outcome of the :meth:`close`-time resubmission, when the
        #: admission was revoked mid-stream.
        self.outcome: Optional[SubmitOutcome] = None
        self._closed = False
        self._revoked = False
        self._certified = frozenset(
            r.wire for r in job.ancilla_requests if r.certified
        )

    @property
    def name(self) -> str:
        return self.job.name

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def revoked(self) -> bool:
        """True once the admission was revoked to the queue."""
        return self._revoked

    # ------------------------------------------------------------------ #
    # The stream
    # ------------------------------------------------------------------ #

    def feed(self, gate: Gate) -> int:
        """Append one gate; returns its index in the job's circuit.

        The admission is refined *in the same call*: lease windows of
        touched leased ancillas regrow (extend / move / revoke, see the
        class docstring) and the internal placement is refreshed, so
        the occupancy invariants hold when this returns.  After a
        revocation the stream keeps accepting gates — the complete
        circuit is resubmitted at :meth:`close`.
        """
        if self._closed:
            raise CircuitError(
                f"stream job {self.job.name!r} is closed; no more gates"
            )
        if self.job.ancilla_requests and not gate.is_classical:
            raise VerificationError(
                f"job {self.job.name}: only classical circuits can be "
                f"auto-verified for cross-program borrowing"
            )
        self.job.circuit.append(gate)
        index = self.allocator.feed(gate)
        if not self._revoked:
            touched = sorted(set(gate.qubits) & set(self.admission.leases))
            for ancilla in touched:
                if self._revoked:
                    break
                self._refresh_lease(ancilla)
            if not self._revoked:
                self._refresh_plan()
        return index

    def extend(self, gates) -> int:
        """Feed many gates; returns the last index."""
        index = len(self.job.circuit.gates) - 1
        for gate in gates:
            index = self.feed(gate)
        return index

    def close(self) -> Optional[Admission]:
        """End the stream; returns the final admission (or ``None``).

        Closes the allocator (committing every open decision), then
        re-proves ancilla safety over the *complete* circuit: a lease
        whose prefix-time verdict the tail broke is revoked to a fresh
        wire, or — free pool exhausted — the whole job is revoked.  A
        job revoked at any point is resubmitted here through
        :meth:`MultiProgrammer.submit` (its outcome lands in
        :attr:`outcome`) and ``None`` is returned.  Idempotent.
        """
        if self._closed:
            return self.admission
        self._closed = True
        self.allocator.close()
        if not self._revoked:
            self._verify_full()
        if not self._revoked:
            self._refresh_plan()
            return self.admission
        self.outcome = self._mp.submit(self.job)
        return None

    # ------------------------------------------------------------------ #
    # Admission and refinement machinery
    # ------------------------------------------------------------------ #

    def _ingest(self, gate: Gate) -> int:
        """Feed a prefix gate (before admission: no leases to refine)."""
        if self.job.ancilla_requests and not gate.is_classical:
            raise VerificationError(
                f"job {self.job.name}: only classical circuits can be "
                f"auto-verified for cross-program borrowing"
            )
        self.job.circuit.append(gate)
        return self.allocator.feed(gate)

    def _verify_prefix(self) -> Dict[int, bool]:
        """Eagerly verify every requested wire on the prefix circuit.

        Eager (unlike :meth:`MultiProgrammer._verify_job`'s lazy mode)
        because the verdicts gate which ancillas may lease *and* which
        later internal placements count as sound — and the prefix is
        usually short, so the solver bill is small.  Certified wires
        skip the solver exactly like the offline path.
        """
        mp, job = self._mp, self.job
        if not job.request_wires:
            return {}
        safety = {a: True for a in self._certified}
        mp.static_discharged += len(self._certified)
        to_verify = tuple(
            a for a in job.request_wires if a not in self._certified
        )
        if to_verify:
            report = mp.verifier.verify_circuit(job.circuit, to_verify)
            safety.update({v.qubit: v.safe for v in report.verdicts})
        return safety

    def _admit_prefix(self, enforce_capacity: bool) -> None:
        """Admit the job on its prefix: leases, fresh wires, residency.

        Mirrors :meth:`MultiProgrammer.admit` with an identity layout —
        the stream's width is not reduced (future gates may touch any
        wire), so every non-leased original wire takes a fresh machine
        wire and ``wire_map`` is the identity.
        """
        mp, job = self._mp, self.job
        safety = self._verify_prefix()
        placement = self.allocator.placement()
        gate_offset = mp._clock
        placed = set(placement.assignment)
        cross_hosts: Dict[int, int] = {}
        leases: Dict[int, Lease] = {}
        for a in job.request_wires:
            if a in placed or a in cross_hosts or not safety.get(a):
                continue
            if a not in set(self.allocator.active):
                continue  # untouched so far: no window to lease yet
            window = self.allocator.window(a).shifted(gate_offset)
            wire = mp._lease_host(window, self._packer)
            if wire is None:
                continue
            lease = Lease(
                guest=job.name, ancilla=a, wire=wire, window=window
            )
            cross_hosts[a] = wire
            leases[a] = lease
            mp._leases.setdefault(wire, []).append(lease)
            mp._holders[wire].add(job.name)

        fresh_needed = job.circuit.num_qubits - len(cross_hosts)
        try:
            fresh = mp._take_free(job.name, fresh_needed, enforce_capacity)
        except CircuitError:
            mp._retire_leases(leases.values())
            for wire in set(cross_hosts.values()):
                mp._holders[wire].discard(job.name)
            raise
        pool = iter(fresh)
        wires = tuple(
            cross_hosts[q] if q in cross_hosts else next(pool)
            for q in range(job.circuit.num_qubits)
        )
        plan = BorrowPlan(
            circuit=job.circuit,
            assignment={},
            unplaced=sorted(job.request_wires),
            periods={},
            wire_map={q: q for q in range(job.circuit.num_qubits)},
            original_width=job.circuit.num_qubits,
            final_width=job.circuit.num_qubits,
            notes=[],
            strategy=self.allocator.name,
            windows={},
        )
        mp._seq += 1
        mp.total_leases += len(leases)
        self.admission = Admission(
            name=job.name,
            job=job,
            plan=plan,
            wires=wires,
            cross_hosts=cross_hosts,
            safety=safety,
            seq=mp._seq,
            strategy=self.allocator.name,
            leases=leases,
            gate_offset=gate_offset,
        )
        mp._residents[job.name] = self.admission
        self._refresh_plan()

    def _refresh_lease(self, ancilla: int) -> None:
        """Regrow one leased ancilla's window after a gate touched it.

        The refinement ladder: extend the lease in place when the new
        window stays disjoint from the wire's other leases; otherwise
        move it to whichever offered wire the packer picks; otherwise
        revoke the lease onto a fresh wire; and with the free pool
        exhausted too, revoke the whole job to the queue.
        """
        mp, adm = self._mp, self.admission
        lease = adm.leases[ancilla]
        window = self.allocator.window(ancilla).shifted(adm.gate_offset)
        if window.segments == lease.window.segments:
            return
        siblings = [
            other
            for other in mp._leases.get(lease.wire, ())
            if other is not lease
        ]
        if all(not window.overlaps(o.window) for o in siblings):
            grown = Lease(
                guest=adm.name,
                ancilla=ancilla,
                wire=lease.wire,
                window=window,
            )
            slot = mp._leases[lease.wire].index(lease)
            mp._leases[lease.wire][slot] = grown
            adm.leases[ancilla] = grown
            mp.stream_refinements += 1
            return
        target = mp._lease_host(window, self._packer)
        if target is not None:
            moved = Lease(
                guest=adm.name, ancilla=ancilla, wire=target, window=window
            )
            mp._retire_leases([lease])
            mp._leases.setdefault(target, []).append(moved)
            mp._holders[target].add(adm.name)
            adm.leases[ancilla] = moved
            adm.cross_hosts[ancilla] = target
            wires = list(adm.wires)
            wires[ancilla] = target
            adm.wires = tuple(wires)
            self._drop_hold(lease.wire)
            mp.stream_refinements += 1
            return
        if not self._revoke_lease(ancilla):
            self._revoke()

    def _revoke_lease(self, ancilla: int) -> bool:
        """Move a leased ancilla onto a fresh wire (lease revoked).

        Returns False when the free pool is empty — the caller then
        revokes the whole job.
        """
        mp, adm = self._mp, self.admission
        lease = adm.leases[ancilla]
        try:
            fresh = mp._take_free(adm.name, 1, True)
        except CapacityError:
            return False
        mp._retire_leases([lease])
        del adm.leases[ancilla]
        del adm.cross_hosts[ancilla]
        wires = list(adm.wires)
        wires[ancilla] = fresh[0]
        adm.wires = tuple(wires)
        self._drop_hold(lease.wire)
        mp.stream_lease_revocations += 1
        return True

    def _drop_hold(self, wire: int) -> None:
        """Release this job's hold on ``wire`` if nothing of its still
        uses it (neither the wire table nor another of its leases)."""
        mp, adm = self._mp, self.admission
        if wire in adm.wires:
            return
        if any(l.wire == wire for l in adm.leases.values()):
            return
        holders = mp._holders.get(wire)
        if holders is None:
            return
        holders.discard(adm.name)
        if not holders:
            del mp._holders[wire]
            mp._idle_owner.pop(wire, None)
            mp._drain()

    def _revoke(self) -> None:
        """Revoke the whole admission to the queue: residency ends, the
        job's wires return to the pool, and :meth:`close` resubmits the
        complete circuit.  The stream keeps accepting gates."""
        mp, adm = self._mp, self.admission
        self._revoked = True
        self.admission = None
        mp._residents.pop(adm.name, None)
        mp._retire_leases(adm.leases.values())
        for wire in set(adm.wires):
            holders = mp._holders.get(wire)
            if holders is None:
                continue
            holders.discard(adm.name)
            if not holders:
                del mp._holders[wire]
                mp._idle_owner.pop(wire, None)
        mp.stream_job_revocations += 1
        mp._drain()

    def _verify_full(self) -> None:
        """Re-prove ancilla safety over the complete circuit at close.

        Prefix-time verdicts are optimistic — the tail may touch a
        leased ancilla without restoring it.  Any lease whose wire is
        no longer proven safe is revoked (fresh wire, or the whole job
        when the pool is dry); the refreshed verdicts also re-gate the
        internal placement via :meth:`_refresh_plan`.
        """
        mp, adm = self._mp, self.admission
        job = self.job
        if not job.request_wires:
            return
        safety = {a: True for a in self._certified}
        to_verify = tuple(
            a for a in job.request_wires if a not in self._certified
        )
        if to_verify:
            report = mp.verifier.verify_circuit(job.circuit, to_verify)
            safety.update({v.qubit: v.safe for v in report.verdicts})
        adm.safety.clear()
        adm.safety.update(safety)
        for ancilla in sorted(adm.leases):
            if safety.get(ancilla) is True:
                continue
            if not self._revoke_lease(ancilla):
                self._revoke()
                return

    def _refresh_plan(self) -> None:
        """Refresh the admission's plan from the live allocator.

        Leased and not-proven-safe ancillas are withheld from the
        assignment (a lease and an internal placement for the same
        ancilla would double-count it; an unsafe placement would break
        the no-unverified-placement rule); everything else mirrors the
        allocator's current committed+tentative placement, which is
        sound against the prefix model by the allocator's own
        invariant.
        """
        adm = self.admission
        placement = self.allocator.placement()
        assignment = {
            a: h
            for a, h in placement.assignment.items()
            if a not in adm.leases and adm.safety.get(a) is True
        }
        plan = adm.plan
        plan.assignment = assignment
        plan.unplaced = sorted(
            set(self.job.request_wires) - set(assignment)
        )
        plan.notes = list(placement.notes)
        plan.windows = {
            a: self.allocator.window(a) for a in self.allocator.active
        }


class MultiProgrammer:
    """An online machine packer with verified dirty-qubit borrowing.

    Parameters
    ----------
    machine_size:
        Physical wire count.
    backend:
        Verification backend for ancilla safety checks.
    strategy:
        Default allocation strategy for admissions and for the batch
        composite pass (any name in
        :func:`repro.alloc.available_strategies`).
    verifier:
        Optional shared :class:`BatchVerifier`; by default the
        scheduler owns one for its lifetime, so ancilla verdicts are
        memoised by circuit fingerprint and re-submitting a job costs
        no solver runs after the first admission.
    cache_path:
        Opt-in disk persistence for those verdicts
        (:class:`~repro.verify.cache.DiskVerdictCache`), making
        repeated service runs free across processes.
    queue_policy:
        Admission-queue drain policy — a registered name
        (:func:`repro.multiprog.queueing.available_policies`: ``fifo``
        or ``backfill``) or a :class:`QueuePolicy` instance.  Governs
        :meth:`submit` / the backfill passes; plain :meth:`admit` never
        touches the queue.
    lending:
        ``"windowed"`` (default) — a lent wire carries any number of
        window-disjoint :class:`Lease`\\ s covering each guest's whole
        activity period, so several concurrent guests can multiplex one
        idle wire; ``"segmented"`` — windows are refined by the
        restore-point analysis into :class:`WindowSet`\\ s, so a lease
        covers only the guest's compute/uncompute segments and other
        guests interleave through the restore gaps; ``"whole"`` — the
        historical behaviour, one guest per lent wire for its entire
        residency.  The two stricter modes are kept as the measured
        baselines the benchmark and the differential tests compare
        against.
    lease_packer:
        Which feasible offered wire a new lease lands on — a registered
        name (:func:`repro.multiprog.packing.available_packers`:
        ``first-fit``, ``best-fit`` or ``earliest-gap``) or a
        :class:`LeasePacker` instance; overridable per admission via
        ``admit(job, packer=...)``.
    restore_check:
        How segmented lending certifies an ancilla's restore segments:
        ``"structural"`` accepts only the syntactic ``C;C⁻¹``
        palindromes; ``"solver"`` adds the semantic fallback
        (:func:`~repro.circuits.intervals.solver_restore_checker`
        sharing this scheduler's memoised verifier), so
        semantically-identity blocks that are not palindromes still
        split into lease segments.  ``None`` (the default) resolves to
        ``"solver"`` under ``lending="segmented"`` and
        ``"structural"`` otherwise — the benchmark's ``restore_check``
        record measures the solver certifier's admission overhead on
        the pinned lending trace at ~0%, so segmented mode gets the
        stronger certifier for free.  Irrelevant outside
        ``lending="segmented"``.
    memoise_models:
        Cache interval-conflict models by circuit fingerprint (the
        lending mode and restore check are fixed per scheduler, so the
        fingerprint plus the request wires identify the model).  Drain
        passes and resubmissions then stop paying O(gates) per
        re-attempted queue entry; hit/miss counts show in
        :meth:`stats`.  Off only for differential testing.
    """

    def __init__(
        self,
        machine_size: int,
        backend: str = "bdd",
        strategy: str = "greedy",
        max_workers: Optional[int] = None,
        verifier: Optional[BatchVerifier] = None,
        cache_path: Optional[str] = None,
        queue_policy: Union[str, QueuePolicy] = "fifo",
        lending: str = "windowed",
        lease_packer: Union[str, LeasePacker] = "first-fit",
        restore_check: Optional[str] = None,
        memoise_models: bool = True,
    ):
        if machine_size < 1:
            raise CircuitError("machine must have at least one qubit")
        if lending not in LENDING_MODES:
            raise CircuitError(
                f"lending must be one of {', '.join(LENDING_MODES)}, "
                f"got {lending!r}"
            )
        if restore_check is None:
            restore_check = (
                "solver" if lending == "segmented" else "structural"
            )
        if restore_check not in ("structural", "solver"):
            raise CircuitError(
                f"restore_check must be 'structural' or 'solver', "
                f"got {restore_check!r}"
            )
        self.machine_size = machine_size
        self.backend = backend
        self.strategy = strategy
        self.lending = lending
        self.lease_packer = self._resolve_packer(lease_packer)
        self.queue_policy = (
            queue_policy
            if isinstance(queue_policy, QueuePolicy)
            else make_policy(queue_policy)
        )
        self.verifier = verifier or BatchVerifier(
            backend=backend, max_workers=max_workers, cache_path=cache_path
        )
        self.restore_check = restore_check
        #: The segment certifier handed to every model build (None for
        #: the structural default).  Shared with the invariant checker,
        #: which must re-derive lease windows over the same analysis.
        self.segment_check: Optional[SegmentCheck] = (
            solver_restore_checker(verifier=self.verifier)
            if restore_check == "solver"
            else None
        )
        self.memoise_models = memoise_models
        #: (circuit fingerprint, request wires) -> memoised model.
        self._model_cache: Dict[
            Tuple[str, Tuple[int, ...]], ConflictModel
        ] = {}
        self.model_cache_hits = 0
        self.model_cache_misses = 0
        self._residents: Dict[str, Admission] = {}
        #: Machine wire -> resident names holding it (owner and guests).
        self._holders: Dict[int, Set[str]] = {}
        #: Idle machine wire -> owner offering it to co-tenant guests.
        self._idle_owner: Dict[int, str] = {}
        #: Lent machine wire -> its active leases, in grant order.
        self._leases: Dict[int, List[Lease]] = {}
        #: Lifetime count of leases granted (bench/introspection).
        self.total_leases = 0
        #: Lifetime count of solver obligations skipped because the
        #: requested ancilla arrived statically certified (one per
        #: certified wire per admission attempt that would otherwise
        #: have verified it).
        self.static_discharged = 0
        self._seq = 0
        #: The admission wait queue, oldest entry first.
        self._queue: List[QueueEntry] = []
        self._queue_stats = QueueStats()
        #: Logical clock: one tick per submit/release event.  Timeouts
        #: are expressed in these ticks, so queue behaviour is
        #: deterministic and replayable.
        self._clock = 0
        self._queue_seq = 0
        #: Names the most recent event's backfill pass admitted from
        #: the queue (reset at the start of every submit/release).
        #: ``submit`` also returns them in its outcome; ``release``
        #: cannot without breaking the freed-wires contract, so this
        #: attribute (mirrored in ``stats()``) carries the provenance.
        self.last_backfilled: Tuple[str, ...] = ()
        #: Prefix-admission lifetime counters (see :meth:`admit_stream`
        #: and ``stats()["streaming"]``).
        self.stream_admissions = 0
        self.stream_refinements = 0
        self.stream_lease_revocations = 0
        self.stream_job_revocations = 0
        #: Job name -> its :class:`StreamAdmission` handle, kept for
        #: the per-job throughput counters in :meth:`stats`.
        self._streams: Dict[str, "StreamAdmission"] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def residents(self) -> Tuple[str, ...]:
        """Names of the jobs currently on the machine, by arrival."""
        return tuple(self._residents)

    @property
    def occupancy(self) -> int:
        """Machine wires currently held by at least one resident."""
        return len(self._holders)

    @property
    def free_qubits(self) -> int:
        return max(0, self.machine_size - self.occupancy)

    @property
    def lendable_wires(self) -> Tuple[int, ...]:
        """Offered wires with no active lease at all.

        Under windowed lending this understates availability — a wire
        that is already leased can still take any window-disjoint
        lease; :meth:`lease_table` (plus :meth:`idle_offers`) is the
        per-window truth.  Kept with its historical meaning as the
        "completely free to lend" view.
        """
        return tuple(
            sorted(
                w for w in self._idle_owner if not self._leases.get(w)
            )
        )

    def admission(self, name: str) -> Admission:
        adm = self._residents.get(name)
        if adm is None:
            raise CircuitError(f"no resident job named {name!r}")
        return adm

    def occupancy_table(self) -> Dict[int, Tuple[str, ...]]:
        """Machine wire -> sorted names of the residents holding it.

        A wire multiplexed across several guests lists them all; the
        per-window breakdown of *when* each guest holds it is
        :meth:`lease_table`.
        """
        return {
            wire: tuple(sorted(holders))
            for wire, holders in sorted(self._holders.items())
        }

    def idle_offers(self) -> Dict[int, str]:
        """Machine wire -> resident offering it to co-tenant guests.

        An offer stays live while the wire is leased: under windowed
        lending the wire can still host any window-disjoint lease, so
        availability is per gate-round window, not per wire.
        """
        return dict(sorted(self._idle_owner.items()))

    def lease_table(self) -> Dict[int, Tuple[Lease, ...]]:
        """Machine wire -> its active leases, by window start.

        The per-window availability report: the gaps between (and
        around) a wire's lease windows are exactly the rounds a new
        guest could still lease, provided the wire's owner offer is
        live (:meth:`idle_offers`).
        """
        return {
            wire: tuple(
                sorted(
                    leases,
                    key=lambda lease: (lease.window.first, lease.guest),
                )
            )
            for wire, leases in sorted(self._leases.items())
            if leases
        }

    def pending(self) -> Tuple[str, ...]:
        """Names of the queued (not yet admitted) jobs, oldest first."""
        return tuple(entry.name for entry in self._queue)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def stats(self) -> Dict[str, object]:
        """Lifetime queue counters plus a live snapshot (JSON-friendly).

        Wait times are in logical-clock events — the unit timeouts are
        expressed in — not wall seconds.
        """
        data = self._queue_stats.as_dict()
        data["policy"] = self.queue_policy.name
        data["lending"] = self.lending
        data["packer"] = self.lease_packer.name
        data["restore_check"] = self.restore_check
        data["leases_granted"] = self.total_leases
        data["static_discharged"] = self.static_discharged
        data["pending"] = len(self._queue)
        data["residents"] = len(self._residents)
        data["clock"] = self._clock
        data["last_backfilled"] = list(self.last_backfilled)
        data["model_cache_hits"] = self.model_cache_hits
        data["model_cache_misses"] = self.model_cache_misses
        data["streaming"] = {
            "admissions": self.stream_admissions,
            "refinements": self.stream_refinements,
            "lease_revocations": self.stream_lease_revocations,
            "revoked_to_queue": self.stream_job_revocations,
            "jobs": {
                name: stream.allocator.stats.as_dict()
                for name, stream in self._streams.items()
            },
        }
        return data

    def snapshot(self) -> str:
        lines = [
            f"machine {self.machine_size} qubits: {self.occupancy} busy, "
            f"{self.free_qubits} free, "
            f"{len(self.lendable_wires)} lendable, "
            f"{len(self._queue)} queued"
        ]
        for adm in self._residents.values():
            lines.append(f"  {adm.summary()}")
        for wire, leases in self.lease_table().items():
            spans = ", ".join(
                f"{lease.guest}:a{lease.ancilla}@{lease.window}"
                for lease in leases
            )
            lines.append(f"  m{wire} leased [{spans}]")
        for entry in self._queue:
            lines.append(
                f"  {entry.name}: waiting since t={entry.enqueued_at}"
                + (
                    f" (expires t={entry.deadline})"
                    if entry.deadline is not None
                    else ""
                )
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Online path
    # ------------------------------------------------------------------ #

    def admit(
        self,
        job: QuantumJob,
        strategy: Optional[str] = None,
        enforce_capacity: bool = True,
        lazy_verify: bool = True,
        packer: Optional[Union[str, LeasePacker]] = None,
    ) -> Admission:
        """Place an arriving job against live machine occupancy.

        ``packer`` overrides the scheduler's lease-packing policy for
        this admission only (a registered name or a
        :class:`LeasePacker` instance).  Raises :class:`CircuitError`
        when the job needs more free qubits than the machine has (the
        over-capacity rejection), unless ``enforce_capacity`` is off —
        the batch replay uses that to report non-fitting schedules
        instead of failing fast.
        """
        if job.name in self._residents:
            raise CircuitError(f"job {job.name!r} is already resident")
        strategy = strategy or self.strategy
        packer = (
            self.lease_packer if packer is None else self._resolve_packer(packer)
        )

        safety, model = self._verify_job(job, lazy_verify)
        # Every requested wire goes into the model (so an unsafe or
        # unverified ancilla stays OFF the host list, exactly like the
        # batch path); the gate then skips the unplaceable ones.  The
        # model built for the lazy-verification decision is reused.
        plan = allocate(
            job.circuit,
            job.request_wires,
            strategy=self._engine(
                strategy,
                frozenset(
                    r.wire for r in job.ancilla_requests if r.certified
                ),
            ),
            safety_check=lambda _, a: bool(safety.get(a)),
            on_unsafe="skip",
            model=model,
        )

        # Ancillas the internal pass could not place may lease a wire a
        # co-tenant lends out (safe ones only — an unverified ancilla
        # never crosses a program boundary).  Each lease covers just
        # the ancilla's lending window on the machine timeline, so a
        # wire that is already lent can serve this guest too as long as
        # the windows are disjoint.
        gate_offset = self._clock
        cross_hosts: Dict[int, int] = {}
        leases: Dict[int, Lease] = {}
        for a in plan.unplaced:
            if not safety.get(a):
                continue
            window = plan.windows[a].shifted(gate_offset)
            wire = self._lease_host(window, packer)
            if wire is None:
                continue
            lease = Lease(
                guest=job.name, ancilla=a, wire=wire, window=window
            )
            cross_hosts[a] = wire
            leases[a] = lease
            self._leases.setdefault(wire, []).append(lease)
            self._holders[wire].add(job.name)

        fresh_needed = plan.final_width - len(cross_hosts)
        try:
            fresh = self._take_free(job.name, fresh_needed, enforce_capacity)
        except CircuitError:
            self._retire_leases(leases.values())  # roll back the borrows
            for wire in set(cross_hosts.values()):
                self._holders[wire].discard(job.name)
            raise

        # Reduced-circuit wire -> machine wire.
        wires: List[int] = []
        pool = iter(fresh)
        borrowed_by_reduced = {
            plan.wire_map[a]: w for a, w in cross_hosts.items()
        }
        for reduced in range(plan.final_width):
            if reduced in borrowed_by_reduced:
                wires.append(borrowed_by_reduced[reduced])
            else:
                wires.append(next(pool))

        # Offer this job's untouched fresh wires to future guests.
        idle_reduced = plan.circuit.idle_qubits()
        for reduced in idle_reduced:
            wire = wires[reduced]
            if wire in fresh:
                self._idle_owner[wire] = job.name

        self._seq += 1
        self.total_leases += len(leases)
        admission = Admission(
            name=job.name,
            job=job,
            plan=plan,
            wires=tuple(wires),
            cross_hosts=cross_hosts,
            safety=safety,
            seq=self._seq,
            strategy=strategy,
            leases=leases,
            gate_offset=gate_offset,
        )
        self._residents[job.name] = admission
        return admission

    def admit_stream(
        self,
        name: str,
        num_qubits: int,
        ancilla_requests: Sequence[Union[int, BorrowRequest]] = (),
        prefix: Sequence[Gate] = (),
        lookahead: Union[None, int, float, str, LookaheadPolicy] = "adaptive",
        packer: Optional[Union[str, LeasePacker]] = None,
        enforce_capacity: bool = True,
    ) -> StreamAdmission:
        """Admit a still-open gate stream on its prefix.

        The parse-while-allocate front door: instead of a finished
        :class:`QuantumJob`, the caller declares the register width and
        ancilla requests up front, optionally feeds a ``prefix`` of
        gates, and receives a :class:`StreamAdmission` handle — the job
        is *resident from this call on*, holding fresh wires for every
        non-leased original wire (no width reduction: the unseen tail
        may touch anything) plus cross-program leases for requested
        ancillas the prefix already proves safe.  Each later
        ``handle.feed(gate)`` refines the admission in the same call
        (lease windows regrow; extend → move → fresh wire → revoke to
        the queue), so the global occupancy contract holds between any
        two gates; ``handle.close()`` re-proves safety over the
        complete circuit and resubmits a revoked job via
        :meth:`submit`.  Time to first lease is therefore one prefix,
        not one full parse — the overlap the streaming-front-end bench
        section measures.

        ``lookahead`` configures the handle's internal
        :class:`~repro.alloc.StreamingAllocator` (a horizon, a
        registered policy name — default ``"adaptive"`` — or a
        :class:`~repro.alloc.LookaheadPolicy` instance).  ``prefix``
        gates count into the admission's safety verdicts and leases;
        an empty prefix admits on width alone.  Raises
        :class:`~repro.errors.CapacityError` when the machine cannot
        host the width right now (nothing is queued — use
        :meth:`submit` with the finished circuit for queueing
        semantics).
        """
        if name in self._residents:
            raise CircuitError(f"job {name!r} is already resident")
        if any(entry.name == name for entry in self._queue):
            raise CircuitError(f"job {name!r} is already queued")
        requests = [
            r if isinstance(r, BorrowRequest) else BorrowRequest(int(r))
            for r in ancilla_requests
        ]
        job = QuantumJob(
            name=name,
            circuit=Circuit(num_qubits),
            ancilla_requests=requests,
        )
        allocator = StreamingAllocator(
            num_qubits,
            job.request_wires,
            lookahead=lookahead,
            segmented=self.lending == "segmented",
            segment_check=self.segment_check,
        )
        stream = StreamAdmission(
            self,
            job,
            allocator,
            self.lease_packer if packer is None else self._resolve_packer(packer),
        )
        for gate in prefix:
            stream._ingest(gate)
        stream._admit_prefix(enforce_capacity)
        self.stream_admissions += 1
        self._streams[name] = stream
        return stream

    # ------------------------------------------------------------------ #
    # Queueing path
    # ------------------------------------------------------------------ #

    def submit(
        self,
        job: QuantumJob,
        strategy: Optional[str] = None,
        timeout: Optional[int] = None,
        priority: int = 0,
    ) -> SubmitOutcome:
        """Admit an arriving job, or queue it until capacity frees up.

        The queueing alternative to :meth:`admit`: a job the machine
        cannot hold right now waits in the admission queue and is
        re-attempted by the backfill pass every :meth:`release` (and
        after any admission that creates new lendable wires) under the
        scheduler's :class:`QueuePolicy`.  Under strict ``fifo`` a new
        arrival never overtakes the queue — it is attempted only when
        the queue is empty; under ``backfill`` every arrival is tried
        immediately.

        ``priority`` orders the ``priority`` queue policy's drain
        passes (higher first; other policies ignore it).  ``timeout``
        is a logical-clock budget: the queued job expires
        (dropped, counted in :meth:`stats`) if still waiting after that
        many submit/release events.  A job that can never be admitted
        is rejected at submission rather than queued: one that provably
        cannot fit an empty machine (width minus ancilla requests
        exceeds the machine, or the immediate attempt fails with the
        machine already empty) raises
        :class:`~repro.errors.CapacityError`, and a job outside the
        verifiable fragment (non-classical with ancilla requests)
        raises :class:`~repro.errors.VerificationError` — queueing
        either could never help, and a FIFO queue must not be clogged
        by the unadmittable.
        """
        if timeout is not None and timeout < 1:
            raise CircuitError("timeout must be at least one event")
        if job.name in self._residents:
            raise CircuitError(f"job {job.name!r} is already resident")
        if any(entry.name == job.name for entry in self._queue):
            raise CircuitError(f"job {job.name!r} is already queued")
        # Every submission is one logical event, rejections included:
        # the clock ticks and overdue entries expire before any outcome
        # is decided, so a trace containing fail-fast rejects advances
        # queued timeouts exactly like one made of admissible jobs.
        self._clock += 1
        self._expire()
        self._queue_stats.submitted += 1
        self.last_backfilled = ()
        # Fail-fast checks that do not depend on machine state — they
        # must run even when the policy skips the immediate admit
        # attempt (fifo with a non-empty queue), or an unadmittable
        # job would silently head-block the queue.
        if job.request_wires and not is_classical_circuit(job.circuit):
            self._queue_stats.rejected += 1
            raise VerificationError(
                f"job {job.name}: only classical circuits can be "
                f"auto-verified for cross-program borrowing"
            )
        min_fresh = job.reduced_width
        if min_fresh > self.machine_size:
            self._queue_stats.rejected += 1
            raise CapacityError(
                f"job {job.name!r} needs at least {min_fresh} free "
                f"qubits but the machine has {self.machine_size} in "
                f"total"
            )
        if not self._queue or self.queue_policy.allows_overtaking:
            try:
                admission = self.admit(job, strategy=strategy)
            except CapacityError:
                if self.occupancy == 0:
                    # Even a fully empty machine cannot host this job.
                    self._queue_stats.rejected += 1
                    raise
            else:
                self._queue_stats.admitted_immediately += 1
                # This admission may have offered new lendable wires;
                # a queued job might fit through a cross-borrow now.
                backfilled = self._drain() if self._queue else ()
                return SubmitOutcome(
                    "admitted", admission=admission, backfilled=backfilled
                )
        self._queue_seq += 1
        entry = QueueEntry(
            job=job,
            strategy=strategy,
            enqueued_at=self._clock,
            deadline=None if timeout is None else self._clock + timeout,
            seq=self._queue_seq,
            priority=priority,
        )
        self._queue.append(entry)
        self._queue_stats.queued += 1
        return SubmitOutcome("queued", position=len(self._queue) - 1)

    def cancel(self, name: str) -> QuantumJob:
        """Withdraw a queued (not yet admitted) job; returns it.

        A *resident* job cannot be cancelled — it already holds wires
        and must run to completion via :meth:`release`; the error
        distinguishes that case from a name the scheduler has never
        heard of.
        """
        for entry in self._queue:
            if entry.name == name:
                self._queue.remove(entry)
                self._queue_stats.cancelled += 1
                return entry.job
        if name in self._residents:
            raise CircuitError(
                f"job {name!r} is resident, not queued — it already "
                f"holds machine wires; use release() to complete it"
            )
        raise CircuitError(f"no queued job named {name!r}")

    def _expire(self) -> Tuple[str, ...]:
        """Drop queued entries whose logical-clock deadline has passed."""
        expired = [
            entry
            for entry in self._queue
            if entry.deadline is not None and self._clock >= entry.deadline
        ]
        for entry in expired:
            self._queue.remove(entry)
            self._queue_stats.expired += 1
            self._queue_stats.expired_names.append(entry.name)
            # An expired job waited from enqueue to now; mean wait
            # must cover these, not just the lucky admitted-from-queue
            # entries, or it underreports congestion.
            self._queue_stats.total_wait += self._clock - entry.enqueued_at
        return tuple(entry.name for entry in expired)

    def _drain(self) -> Tuple[str, ...]:
        """Run policy drain passes to a fixpoint; returns admitted names.

        Each admission inside a pass can change what fits next (it may
        offer new lendable wires), so passes repeat until one admits
        nothing.  An entry that can never be admitted — it fails to fit
        on an *empty* machine, or its admission raises for a
        non-capacity reason (a bad strategy name, an unverifiable
        circuit) — is dropped as rejected rather than left to clog a
        FIFO queue (or poison every future drain pass) forever.
        """
        admitted_names: List[str] = []
        while self._queue:
            impossible: List[QueueEntry] = []

            def try_admit(entry: QueueEntry) -> Optional[Admission]:
                try:
                    return self.admit(entry.job, strategy=entry.strategy)
                except CapacityError:
                    if self.occupancy == 0:
                        impossible.append(entry)
                    return None
                except (CircuitError, VerificationError):
                    impossible.append(entry)
                    return None

            admitted = self.queue_policy.drain(self._queue, try_admit)
            for entry in admitted:
                self._queue_stats.admitted_from_queue += 1
                self._queue_stats.total_wait += (
                    self._clock - entry.enqueued_at
                )
                admitted_names.append(entry.name)
            for entry in impossible:
                if entry in self._queue:
                    self._queue.remove(entry)
                    self._queue_stats.rejected += 1
            if not admitted and not impossible:
                break
        self.last_backfilled = tuple(admitted_names)
        return tuple(admitted_names)

    def drain(self) -> Tuple[str, ...]:
        """Run queue-policy drain passes right now; returns admitted names.

        Normally drains run automatically on every :meth:`release` (and
        after an admission that frees lendable capacity), but a caller
        that changes what this machine can observe *indirectly* — the
        fleet router, after admitting a co-tenant via :meth:`admit` —
        can trigger one explicitly.  Does not tick the logical clock:
        a drain is part of the event that caused it, not an event of
        its own.
        """
        if not self._queue:
            self.last_backfilled = ()
            return ()
        return self._drain()

    def queue_entry(self, name: str) -> QueueEntry:
        """The live :class:`QueueEntry` for a queued job (by name).

        Read-only introspection for callers that need the original
        submission context — job, strategy, priority — e.g. the fleet
        router deciding whether the entry would fit another shard.
        """
        for entry in self._queue:
            if entry.name == name:
                return entry
        raise CircuitError(f"no queued job named {name!r}")

    def release(self, name: str) -> Tuple[int, ...]:
        """Complete a resident job; returns the machine wires freed.

        Only this guest's leases retire — a wire it shared with other
        window-disjoint guests stays occupied by them (and by its
        owner, if still resident) and is freed when the last of them
        releases.  Releasing also ticks the logical clock, expires
        overdue queued jobs, and runs a backfill pass admitting any
        queued job that now fits under the scheduler's
        :class:`QueuePolicy`.  The return value stays the freed wires
        (the historical contract); the names the backfill pass admitted
        are recorded in :attr:`last_backfilled` and
        ``stats()["last_backfilled"]`` so callers can attribute queue
        admissions to the release that caused them.
        """
        admission = self._residents.pop(name, None)
        if admission is None:
            if any(entry.name == name for entry in self._queue):
                raise CircuitError(
                    f"job {name!r} is queued, not resident — it holds "
                    f"no wires yet; use cancel() to withdraw it"
                )
            raise CircuitError(f"no resident job named {name!r}")
        self._clock += 1
        self._expire()
        self.last_backfilled = ()
        self._retire_leases(admission.leases.values())
        freed: List[int] = []
        for wire in set(admission.wires):
            holders = self._holders.get(wire)
            if holders is None:
                continue
            holders.discard(name)
            if not holders:
                del self._holders[wire]
                self._idle_owner.pop(wire, None)
                freed.append(wire)
        # Wires this job owned but could not free (guests still hold
        # leases) stop being offered — the owner is gone.
        for wire, owner in list(self._idle_owner.items()):
            if owner == name:
                del self._idle_owner[wire]
        # Windows this job leased return to the owners' pools
        # automatically: the owners' _idle_owner entries persist and
        # the retired leases no longer block anyone.
        self._drain()
        return tuple(sorted(freed))

    # ------------------------------------------------------------------ #
    # Batch path (historical API, replayed over the online engine)
    # ------------------------------------------------------------------ #

    def schedule(
        self, jobs: Sequence[QuantumJob], require_fit: bool = True
    ) -> ScheduleResult:
        """Merge, verify, and borrow; raises if the result exceeds the
        machine and ``require_fit`` is set.

        Implemented as a replay over the online path: every job is
        admitted in arrival order on a fresh machine sharing this
        scheduler's memoising verifier (capacity unenforced, so
        ``require_fit=False`` can still report), and the resident batch
        is then compacted as one composite circuit — which reproduces
        the seed scheduler's results exactly.
        """
        if not jobs:
            raise CircuitError("no jobs to schedule")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise CircuitError("duplicate job names")

        replay = MultiProgrammer(
            self.machine_size,
            backend=self.backend,
            strategy=self.strategy,
            verifier=self.verifier,
            lending=self.lending,
            lease_packer=self.lease_packer,
            restore_check=self.restore_check,
            memoise_models=self.memoise_models,
        )
        admissions = [
            replay.admit(job, enforce_capacity=False, lazy_verify=False)
            for job in jobs
        ]
        safety = {
            (adm.name, wire): safe
            for adm in admissions
            for wire, safe in adm.safety.items()
        }

        composite, offsets = self._merge(jobs)
        borrowable = [
            offsets[job.name] + wire
            for job in jobs
            for wire in job.request_wires
            if safety[(job.name, wire)]
        ]
        plan = allocate(
            composite, borrowable, strategy=self._engine(self.strategy)
        )
        result = ScheduleResult(
            composite=plan.circuit,
            plan=plan,
            job_offsets=offsets,
            safety=safety,
            naive_width=composite.num_qubits,
            final_width=plan.final_width,
            machine_size=self.machine_size,
            admissions=admissions,
        )
        if require_fit and not result.fits_machine:
            raise CircuitError(
                f"schedule needs {result.final_width} qubits but the "
                f"machine has {self.machine_size}"
            )
        return result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve_packer(packer: Union[str, LeasePacker]) -> LeasePacker:
        if isinstance(packer, LeasePacker):
            return packer
        return make_packer(packer)

    def _lease_host(
        self, window: WindowSet, packer: LeasePacker
    ) -> Optional[int]:
        """The offered wire ``packer`` picks to host ``window``.

        Feasibility is decided here, once, and is mode-dependent:
        windowed/segmented lending accepts any offered wire whose
        existing leases are all window-set-disjoint from ``window``;
        whole-residency lending only accepts a wire with no lease at
        all (the historical one-guest-per-wire rule).  The packer then
        expresses a pure preference among the feasible wires.
        """
        feasible: Dict[int, Tuple[Lease, ...]] = {}
        for wire in self._idle_owner:
            leases = tuple(self._leases.get(wire, ()))
            if self.lending == "whole":
                if leases:
                    continue
            elif any(lease.window.overlaps(window) for lease in leases):
                continue
            feasible[wire] = leases
        return packer.choose(window, feasible)

    def _retire_leases(self, leases) -> None:
        """Remove ``leases`` from the per-wire tables."""
        for lease in leases:
            active = self._leases.get(lease.wire)
            if active is None:
                continue
            active.remove(lease)
            if not active:
                del self._leases[lease.wire]

    def _engine(self, strategy: str, certified: FrozenSet[int] = frozenset()):
        """Resolve a strategy name, sharing the scheduler's memoising
        verifier with the ``verified`` wrapper (its re-checks of
        already-verified ancillas then cost cache hits, not solver
        runs).  ``certified`` wires — statically proven safe — are
        passed through so the wrapper never issues solver obligations
        for them either."""
        if strategy == "verified":
            from repro.alloc import VerifiedStrategy

            return VerifiedStrategy(
                verifier=self.verifier, precertified=certified
            )
        return strategy

    def _verify_job(
        self, job: QuantumJob, lazy_verify: bool
    ) -> Tuple[Dict[int, bool], Optional[ConflictModel]]:
        """Batch-verify the job's requested ancillas.

        Lazy mode skips ancillas that could never be placed anyway —
        no candidate host in the job's own circuit and no lendable
        co-tenant wire — so they pay no solver time at all.  Returns
        the verdicts plus the interval model (built with this
        scheduler's lending mode: segmented windows under
        ``lending="segmented"``, certified by ``restore_check``), so
        the caller hands it on to :func:`allocate` instead of
        rebuilding it — every admission path plans over the same
        window sets the leases will cover.  The model itself comes
        from the fingerprint-keyed cache (see :meth:`_job_model`), so
        drain-pass re-attempts of a queued job cost a dict lookup.

        Ancillas whose :class:`BorrowRequest` arrived ``certified``
        (proven safe statically, e.g. by the surface language's borrow
        checker) are marked safe without a solver obligation; each such
        skip of an otherwise-due verification bumps
        :attr:`static_discharged`.
        """
        requests = job.request_wires
        if not requests:
            return {}, None
        if not is_classical_circuit(job.circuit):
            raise VerificationError(
                f"job {job.name}: only classical circuits can be "
                f"auto-verified for cross-program borrowing"
            )
        certified = {
            r.wire for r in job.ancilla_requests if r.certified
        }
        model = self._job_model(job)
        if lazy_verify:
            # Any live offer can potentially host a window under
            # windowed/segmented lending; whole-residency needs a
            # lease-free one.
            if self.lending == "whole":
                lendable = bool(self.lendable_wires)
            else:
                lendable = bool(self._idle_owner)
            to_verify = tuple(
                a
                for a in model.ancillas
                if model.candidates[a] or lendable
            )
        else:
            to_verify = requests
        safety = {a: True for a in certified}
        self.static_discharged += sum(
            1 for a in to_verify if a in certified
        )
        to_verify = tuple(a for a in to_verify if a not in certified)
        if not to_verify:
            return safety, model
        report = self.verifier.verify_circuit(job.circuit, to_verify)
        safety.update({v.qubit: v.safe for v in report.verdicts})
        return safety, model

    def _job_model(self, job: QuantumJob) -> ConflictModel:
        """The job's interval-conflict model, memoised.

        Lending mode and restore check are fixed for the scheduler's
        lifetime, so ``(circuit fingerprint, request wires)`` fully
        identifies the model — a drain pass re-attempting a queued
        entry, or a resubmission of an identical circuit, pays one
        dict lookup instead of an O(gates) rebuild.  Because
        :func:`repro.alloc.allocate` checks model/circuit *identity*,
        a hit for an equal-but-distinct circuit object rebinds the
        cached model onto the caller's circuit (same gates by
        fingerprint, so every derived structure stays valid).
        """
        requests = job.request_wires
        segmented = self.lending == "segmented"
        if not self.memoise_models:
            return build_model(
                job.circuit,
                requests,
                segmented=segmented,
                segment_check=self.segment_check,
            )
        key = (job.circuit.fingerprint(), requests)
        model = self._model_cache.get(key)
        if model is None:
            self.model_cache_misses += 1
            model = build_model(
                job.circuit,
                requests,
                segmented=segmented,
                segment_check=self.segment_check,
            )
            self._model_cache[key] = model
        else:
            self.model_cache_hits += 1
            if model.circuit is not job.circuit:
                model = replace(model, circuit=job.circuit)
                self._model_cache[key] = model
        return model

    def _take_free(
        self, name: str, count: int, enforce_capacity: bool
    ) -> List[int]:
        free = [
            w for w in range(self.machine_size) if w not in self._holders
        ]
        if len(free) < count:
            if enforce_capacity:
                raise CapacityError(
                    f"job {name!r} needs {count} free qubits but the "
                    f"machine has {len(free)}"
                )
            overflow = self.machine_size
            while len(free) < count:
                if overflow not in self._holders:
                    free.append(overflow)
                overflow += 1
        taken = free[:count]
        for wire in taken:
            self._holders[wire] = {name}
        return taken

    def _merge(
        self, jobs: Sequence[QuantumJob]
    ) -> Tuple[Circuit, Dict[str, int]]:
        """Round-robin interleave jobs onto disjoint wire ranges."""
        offsets: Dict[str, int] = {}
        labels: List[str] = []
        total = 0
        for job in jobs:
            offsets[job.name] = total
            for w in range(job.circuit.num_qubits):
                labels.append(f"{job.name}.{job.circuit.label_of(w)}")
            total += job.circuit.num_qubits
        composite = Circuit(total, labels=labels)
        cursors = [0] * len(jobs)
        remaining = sum(len(job.circuit.gates) for job in jobs)
        while remaining:
            for idx, job in enumerate(jobs):
                if cursors[idx] >= len(job.circuit.gates):
                    continue
                gate = job.circuit.gates[cursors[idx]]
                shift = offsets[job.name]
                composite.append(
                    gate.remap({q: q + shift for q in gate.qubits})
                )
                cursors[idx] += 1
                remaining -= 1
        return composite, offsets
