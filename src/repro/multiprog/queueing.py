"""Admission-queue policies for the online multi-programmer.

A capacity-rejected :meth:`~repro.multiprog.scheduler.MultiProgrammer.submit`
does not bounce the job: it lands in a wait queue, and every event that
frees or re-shapes capacity (a release, or a new admission that offers
lendable wires) triggers a *drain pass* that re-attempts queued jobs.
Which jobs a pass may attempt is the policy knob, registered here with
the same decorator-registry shape as the allocation strategies and the
verification backends:

* ``fifo`` — strict head-of-line: only the queue head is ever
  attempted, so admission order equals arrival order (at the price of
  head-of-line blocking — a wide job at the head starves narrower jobs
  behind it);
* ``backfill`` — out-of-order: one pass over the whole queue in
  arrival order, admitting every job that fits *now* and skipping the
  rest, so a narrow late arrival can slip past a blocked wide head;
* ``sjf`` — shortest job first: one pass in ascending *reduced width*
  (the job's wire count minus its ancilla requests — the floor on the
  fresh qubits it can need), oldest first among equals, so the narrow
  jobs that fit almost anywhere drain before the wide ones that were
  blocking them;
* ``priority`` — highest ``submit(..., priority=…)`` first, oldest
  first among equals: paying tenants overtake, equal-priority traffic
  degrades to arrival order (with priorities left at the default the
  policy behaves like ``backfill``).

"Fits" is window-aware: the admission attempt a drain pass makes runs
the full time-sliced lending machinery, so a queued job is admitted as
soon as *some* window assignment works — its verified-safe ancillas may
lease gate-index windows on wires that are already lent to other
guests, provided the windows are disjoint on the machine timeline
(:class:`repro.multiprog.scheduler.Lease`).  Policies themselves stay
purely order-deciding; the window reasoning lives in
:meth:`MultiProgrammer.admit`.

The queue bookkeeping itself (:class:`QueueEntry`, :class:`QueueStats`,
:class:`SubmitOutcome`) is policy-independent and lives here so the
scheduler module stays focused on machine state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.registry import make_registry


@dataclass(eq=False)
class QueueEntry:
    """One waiting job: the submission plus its queueing metadata.

    ``enqueued_at`` and ``deadline`` are *logical-clock* values (the
    scheduler ticks once per submit/release event), so timeout behaviour
    is deterministic and replayable — no wall-clock in the contract.
    ``deadline is None`` means the entry never expires.  ``priority``
    orders the ``priority`` policy's drain passes (higher first) and is
    ignored by the other policies.
    """

    job: Any  # a repro.multiprog.scheduler.QuantumJob (typed loosely to
    #           avoid an import cycle with the scheduler module)
    strategy: Optional[str]
    enqueued_at: int
    deadline: Optional[int]
    seq: int
    priority: int = 0

    @property
    def name(self) -> str:
        return self.job.name

    @property
    def reduced_width(self) -> int:
        """The job's :attr:`~repro.multiprog.scheduler.QuantumJob.reduced_width`
        — the floor on its fresh-qubit need, the ``sjf`` sort key."""
        return self.job.reduced_width


@dataclass
class SubmitOutcome:
    """What :meth:`MultiProgrammer.submit` did with an arrival.

    ``status`` is ``"admitted"`` (then ``admission`` is set) or
    ``"queued"`` (then ``position`` is the 0-based queue slot at
    enqueue time).  ``backfilled`` names any *queued* jobs a successful
    admission unblocked in the same event (new lendable wires can make
    a waiting job fit without any release).
    """

    status: str
    admission: Optional[Any] = None
    position: Optional[int] = None
    backfilled: Tuple[str, ...] = ()

    @property
    def admitted(self) -> bool:
        return self.status == "admitted"


@dataclass
class QueueStats:
    """Lifetime counters of one scheduler's admission queue.

    Wait times are measured in logical-clock events (one tick per
    submit/release), the same unit timeouts are expressed in.
    ``total_wait`` accumulates over every entry that *left* the queue
    with a measurable wait — admitted-from-queue and expired alike —
    so ``mean_wait`` reflects congestion rather than just the lucky
    survivors.
    """

    submitted: int = 0
    admitted_immediately: int = 0
    admitted_from_queue: int = 0
    queued: int = 0
    expired: int = 0
    cancelled: int = 0
    rejected: int = 0
    total_wait: int = 0
    expired_names: List[str] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        return self.admitted_immediately + self.admitted_from_queue

    @property
    def waited(self) -> int:
        """Entries whose wait contributed to ``total_wait``."""
        return self.admitted_from_queue + self.expired

    @property
    def mean_wait(self) -> float:
        if not self.waited:
            return 0.0
        return self.total_wait / self.waited

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "admitted_immediately": self.admitted_immediately,
            "admitted_from_queue": self.admitted_from_queue,
            "queued": self.queued,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "total_wait_events": self.total_wait,
            "mean_wait_events": round(self.mean_wait, 4),
        }


#: A drain pass's admission attempt: returns the Admission, or None
#: when the entry does not fit right now.
TryAdmit = Callable[[QueueEntry], Optional[Any]]


class QueuePolicy(ABC):
    """Decides which queued entries one drain pass may attempt."""

    #: Registry name (set by :func:`register_policy`).
    name: str = "?"

    #: May a *new arrival* be admitted while older jobs wait?  Strict
    #: FIFO says no — a fitting arrival still queues behind the head.
    allows_overtaking: bool = True

    @abstractmethod
    def drain(
        self, entries: List[QueueEntry], try_admit: TryAdmit
    ) -> List[QueueEntry]:
        """Attempt admissions over ``entries`` (oldest first), removing
        each admitted entry from the list in place and returning them
        in admission order.  Entries that do not fit stay queued."""


# ---------------------------------------------------------------------- #
# Registry (the shared repro.registry implementation, same as
# repro.alloc strategies and repro.verify.backends)
# ---------------------------------------------------------------------- #

_REGISTRY = make_registry(QueuePolicy, "queue policy", plural="queue policies")

#: Class decorator: publish a :class:`QueuePolicy` under a name.
register_policy = _REGISTRY.register
#: All registered queue-policy names, sorted.
available_policies = _REGISTRY.available
#: Look up a policy class by name (:class:`CircuitError` if absent).
policy_class = _REGISTRY.get
#: Instantiate a registered policy with keyword options.
make_policy = _REGISTRY.make


# ---------------------------------------------------------------------- #
# The two built-in policies
# ---------------------------------------------------------------------- #


@register_policy("fifo")
class FifoPolicy(QueuePolicy):
    """Strict head-of-line: admission order is exactly arrival order."""

    allows_overtaking = False

    def drain(
        self, entries: List[QueueEntry], try_admit: TryAdmit
    ) -> List[QueueEntry]:
        admitted: List[QueueEntry] = []
        while entries:
            if try_admit(entries[0]) is None:
                break
            admitted.append(entries.pop(0))
        return admitted


def _drain_in_order(
    entries: List[QueueEntry], try_admit: TryAdmit, key
) -> List[QueueEntry]:
    """The shared one-pass drain: attempt every entry in ``key`` order,
    removing the admitted ones from the queue in place.  Every
    out-of-order policy is this loop with a different sort key."""
    admitted: List[QueueEntry] = []
    for entry in sorted(entries, key=key):
        if try_admit(entry) is not None:
            entries.remove(entry)
            admitted.append(entry)
    return admitted


@register_policy("backfill")
class BackfillPolicy(QueuePolicy):
    """Out-of-order: admit anything that fits now, oldest first."""

    allows_overtaking = True

    def drain(
        self, entries: List[QueueEntry], try_admit: TryAdmit
    ) -> List[QueueEntry]:
        return _drain_in_order(
            entries, try_admit, key=lambda entry: entry.seq
        )


@register_policy("sjf")
class ShortestJobFirstPolicy(QueuePolicy):
    """Narrowest reduced width first, oldest first among equals."""

    allows_overtaking = True

    def drain(
        self, entries: List[QueueEntry], try_admit: TryAdmit
    ) -> List[QueueEntry]:
        return _drain_in_order(
            entries,
            try_admit,
            key=lambda entry: (entry.reduced_width, entry.seq),
        )


@register_policy("priority")
class PriorityPolicy(QueuePolicy):
    """Highest submission priority first, oldest first among equals."""

    allows_overtaking = True

    def drain(
        self, entries: List[QueueEntry], try_admit: TryAdmit
    ) -> List[QueueEntry]:
        return _drain_in_order(
            entries,
            try_admit,
            key=lambda entry: (-entry.priority, entry.seq),
        )


__all__ = [
    "BackfillPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "ShortestJobFirstPolicy",
    "QueueEntry",
    "QueuePolicy",
    "QueueStats",
    "SubmitOutcome",
    "available_policies",
    "make_policy",
    "policy_class",
    "register_policy",
]
