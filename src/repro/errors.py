"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses mirror the major
subsystems: linear algebra, circuits, the QBorrow language, denotational
semantics, Boolean reasoning and verification.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class QubitError(ReproError):
    """Raised for invalid qubit indices, duplicates, or dimension mismatches."""


class CircuitError(ReproError):
    """Raised for malformed circuits or gates."""


class CapacityError(CircuitError):
    """Raised when a job needs more free machine qubits than exist.

    The online multi-programmer distinguishes this from other
    :class:`CircuitError` cases: a capacity rejection is *transient*
    (the job may fit after a release) and is what sends an arrival to
    the admission queue instead of failing the submission.
    """


class InvariantViolation(ReproError):
    """Raised by :mod:`repro.testing` when a scheduler safety invariant
    fails — a double-owned wire, a dangling lender, an unsound borrow
    placement.  Always carries enough context to reproduce."""


class ParseError(ReproError):
    """Raised by the QBorrow surface-language lexer and parser.

    Carries the 1-based source position so front ends can point at the
    offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class SemanticsError(ReproError):
    """Raised when a program cannot be interpreted.

    The most important instance is a *stuck* ``borrow`` statement: the
    denotational semantics of ``borrow a; S; release a`` is the empty set
    when ``idle(S)`` is empty (Section 4.2 of the paper).
    """


class StuckProgramError(SemanticsError):
    """Raised when a ``borrow`` statement has no idle qubit to instantiate."""


class BooleanError(ReproError):
    """Raised for malformed Boolean expressions or CNF clauses."""


class SolverError(ReproError):
    """Raised when a SAT/BDD backend is misused or exceeds its limits."""


class SolverCancelled(SolverError):
    """Raised inside a solver whose caller no longer needs the answer.

    The portfolio backend races engines against each other and sets the
    losers' cancel event once the first verdict lands; solvers poll it
    at their loop heads and unwind with this exception.
    """


class VerificationError(ReproError):
    """Raised when a verifier is applied outside its supported fragment.

    For example, the Theorem 6.2 / 6.4 classical checkers only apply to
    circuits built from X and multi-controlled-NOT gates.
    """
