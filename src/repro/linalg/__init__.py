"""Dense linear-algebra substrate (system S1).

This package provides the small but load-bearing toolbox used by every
other subsystem: kets and density operators in Dirac-friendly helpers
(:mod:`repro.linalg.states`), embedding of operators acting on a subset of
qubits into the full register (:mod:`repro.linalg.kron`), partial traces
(:mod:`repro.linalg.partial_trace`), and seeded random states/unitaries for
property-based tests (:mod:`repro.linalg.random`).

Conventions
-----------
* Qubits are indexed ``0 .. n-1``; qubit 0 is the *most significant* bit of
  a computational-basis index, matching the paper's ``|q1 q2 ... qn>``
  ordering.
* States are numpy arrays: kets are 1-D complex vectors of length ``2**n``,
  density operators are ``(2**n, 2**n)`` complex matrices.
"""

from repro.linalg.kron import (
    apply_unitary,
    embed_operator,
    identity,
    kron_all,
    reorder_qubits,
)
from repro.linalg.partial_trace import partial_trace, reduced_state
from repro.linalg.states import (
    BASIS_B,
    VERIFICATION_KETS,
    basis_ket,
    bell_phi,
    bit_ket,
    density,
    fidelity,
    is_density_operator,
    ket0,
    ket1,
    ket_minus,
    ket_plus,
    ket_plus_i,
    matrices_close,
    purity,
)
from repro.linalg.random import (
    random_density,
    random_ket,
    random_product_density,
    random_unitary,
)

__all__ = [
    "BASIS_B",
    "VERIFICATION_KETS",
    "apply_unitary",
    "basis_ket",
    "bell_phi",
    "bit_ket",
    "density",
    "embed_operator",
    "fidelity",
    "identity",
    "is_density_operator",
    "ket0",
    "ket1",
    "ket_minus",
    "ket_plus",
    "ket_plus_i",
    "kron_all",
    "matrices_close",
    "partial_trace",
    "purity",
    "random_density",
    "random_ket",
    "random_product_density",
    "random_unitary",
    "reduced_state",
    "reorder_qubits",
]
