"""Partial trace of multi-qubit density operators.

The paper uses :math:`\\rho|_q` for the *normalised* reduced state of
qubit(s) ``q`` (Theorem 5.3); :func:`reduced_state` implements exactly that,
while :func:`partial_trace` returns the unnormalised trace-out.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QubitError

_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def partial_trace(
    rho: np.ndarray, keep: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Trace out every qubit not in ``keep``.

    The result's wire ``j`` carries qubit ``keep[j]``, so the caller controls
    the output ordering.  Works on unnormalised (partial) density operators.
    """
    keep = list(keep)
    if len(set(keep)) != len(keep):
        raise QubitError(f"duplicate qubits in keep list: {keep}")
    for q in keep:
        if not 0 <= q < num_qubits:
            raise QubitError(f"qubit {q} out of range for {num_qubits} qubits")
    dim = 2**num_qubits
    rho = np.asarray(rho, dtype=complex)
    if rho.shape != (dim, dim):
        raise QubitError(
            f"density of shape {rho.shape} is not on {num_qubits} qubits"
        )
    if 2 * num_qubits > len(_LETTERS):
        raise QubitError(f"partial trace supports at most {len(_LETTERS) // 2} qubits")

    out_labels = list(_LETTERS[:num_qubits])
    in_labels = list(_LETTERS[num_qubits : 2 * num_qubits])
    for q in range(num_qubits):
        if q not in keep:
            in_labels[q] = out_labels[q]  # contract traced qubits
    target = "".join(out_labels[q] for q in keep) + "".join(
        in_labels[q] for q in keep
    )
    subscripts = "".join(out_labels) + "".join(in_labels) + "->" + target
    tensor = rho.reshape([2] * (2 * num_qubits))
    reduced = np.einsum(subscripts, tensor)
    out_dim = 2 ** len(keep)
    return reduced.reshape(out_dim, out_dim)


def reduced_from_ket(
    ket: np.ndarray, keep: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Reduced density of ``keep`` from a pure state, in ``O(2**n)`` memory.

    Avoids materialising the full ``2**n x 2**n`` density operator: the
    ket is reshaped with the kept qubits in front and the reduced state
    is ``M M†`` for the resulting ``2**k x 2**(n-k)`` matrix.
    """
    keep = list(keep)
    if len(set(keep)) != len(keep):
        raise QubitError(f"duplicate qubits in keep list: {keep}")
    for q in keep:
        if not 0 <= q < num_qubits:
            raise QubitError(f"qubit {q} out of range for {num_qubits} qubits")
    ket = np.asarray(ket, dtype=complex)
    if ket.shape != (2**num_qubits,):
        raise QubitError(
            f"ket of shape {ket.shape} is not on {num_qubits} qubits"
        )
    rest = [q for q in range(num_qubits) if q not in keep]
    tensor = ket.reshape([2] * num_qubits).transpose(keep + rest)
    matrix = tensor.reshape(2 ** len(keep), -1)
    return matrix @ matrix.conj().T


def reduced_state(
    rho: np.ndarray, keep: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Return the paper's :math:`\\rho|_{keep}`: partial trace, normalised.

    Raises :class:`QubitError` when ``rho`` has zero trace (the reduced state
    is undefined for the zero partial density operator).
    """
    reduced = partial_trace(rho, keep, num_qubits)
    trace = reduced.trace().real
    if trace <= 1e-15:
        raise QubitError("reduced state of a zero-trace operator is undefined")
    return reduced / trace
