"""Standard kets, density operators, and comparison helpers.

Includes the finite verification basis of Theorem 6.1:

* ``BASIS_B`` — the paper's set :math:`\\mathcal{B} = \\{|0><0|, |1><1|,
  |+><+|, |+i><+i|\\}`, a basis of the one-qubit operator space;
* ``VERIFICATION_KETS`` — the five pure states :math:`\\{|0>, |1>, |+>,
  |+i>, |->\\}` used in condition 2 of Theorem 6.1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QubitError

_SQRT2 = float(np.sqrt(2.0))

ket0 = np.array([1.0, 0.0], dtype=complex)
ket1 = np.array([0.0, 1.0], dtype=complex)
ket_plus = np.array([1.0, 1.0], dtype=complex) / _SQRT2
ket_minus = np.array([1.0, -1.0], dtype=complex) / _SQRT2
ket_plus_i = np.array([1.0, 1.0j], dtype=complex) / _SQRT2


def density(ket: np.ndarray) -> np.ndarray:
    """Return the rank-one density operator ``|ket><ket|``."""
    ket = np.asarray(ket, dtype=complex)
    return np.outer(ket, ket.conj())


#: The paper's operator basis B of the one-qubit state space (Section 6).
BASIS_B = (
    density(ket0),
    density(ket1),
    density(ket_plus),
    density(ket_plus_i),
)

#: The five pure states of Theorem 6.1, condition 2.
VERIFICATION_KETS = (ket0, ket1, ket_plus, ket_plus_i, ket_minus)


def basis_ket(index: int, num_qubits: int) -> np.ndarray:
    """Return the computational-basis ket ``|index>`` on ``num_qubits``."""
    dim = 2**num_qubits
    if not 0 <= index < dim:
        raise QubitError(f"basis index {index} out of range for {num_qubits} qubits")
    ket = np.zeros(dim, dtype=complex)
    ket[index] = 1.0
    return ket


def bit_ket(bits: Sequence[int]) -> np.ndarray:
    """Return ``|b_0 b_1 ... b_{n-1}>`` for a bit sequence (qubit 0 = MSB)."""
    index = 0
    for b in bits:
        if b not in (0, 1):
            raise QubitError(f"bit value {b!r} is not 0 or 1")
        index = (index << 1) | b
    return basis_ket(index, len(bits))


def bell_phi() -> np.ndarray:
    """Return the Bell ket ``|Phi> = (|00> + |11>) / sqrt(2)``."""
    return (bit_ket([0, 0]) + bit_ket([1, 1])) / _SQRT2


def is_density_operator(rho: np.ndarray, atol: float = 1e-9) -> bool:
    """Check that ``rho`` is PSD with trace at most 1 (a *partial* density).

    Partial density operators encode termination probabilities in the
    paper's semantics, so traces below 1 are legal.
    """
    rho = np.asarray(rho, dtype=complex)
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        return False
    if not np.allclose(rho, rho.conj().T, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh(rho)
    if eigenvalues.min() < -atol:
        return False
    return rho.trace().real <= 1.0 + atol


def purity(rho: np.ndarray) -> float:
    """Return ``Tr(rho^2)`` for a normalised density operator."""
    rho = np.asarray(rho, dtype=complex)
    return float(np.trace(rho @ rho).real)


def fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Return the Uhlmann fidelity ``F(rho, sigma)`` in [0, 1].

    Computed as ``(Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2`` via
    eigendecomposition; both arguments must be normalised densities.
    """
    rho = np.asarray(rho, dtype=complex)
    sigma = np.asarray(sigma, dtype=complex)
    values, vectors = np.linalg.eigh(rho)
    values = np.clip(values, 0.0, None)
    sqrt_rho = (vectors * np.sqrt(values)) @ vectors.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    inner_values = np.linalg.eigvalsh(inner)
    inner_values = np.clip(inner_values, 0.0, None)
    return float(np.sum(np.sqrt(inner_values)) ** 2)


def matrices_close(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> bool:
    """Element-wise comparison with a tolerance suited to our simulators."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    return a.shape == b.shape and bool(np.allclose(a, b, atol=atol))
