"""Tensor-product embedding of operators onto chosen qubits.

The paper writes :math:`U_{\\bar q}` for a unitary acting on qubits
:math:`\\bar q`, implicitly tensored with the identity elsewhere
(Section 2).  :func:`embed_operator` realises that lifting concretely:
it takes a ``2**k`` dimensional operator and the positions of the ``k``
qubits it acts on, and returns the ``2**n`` dimensional operator on the
full register.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import QubitError


def identity(num_qubits: int) -> np.ndarray:
    """Return the identity operator on ``num_qubits`` qubits."""
    return np.eye(2**num_qubits, dtype=complex)


def kron_all(operators: Iterable[np.ndarray]) -> np.ndarray:
    """Return the Kronecker product of ``operators`` in order.

    The empty product is the 1x1 identity, so ``kron_all([])`` is a valid
    scalar operator — convenient when a register happens to be empty.
    """
    result = np.eye(1, dtype=complex)
    for op in operators:
        result = np.kron(result, np.asarray(op, dtype=complex))
    return result


def _check_positions(positions: Sequence[int], num_qubits: int) -> None:
    if len(set(positions)) != len(positions):
        raise QubitError(f"duplicate qubit positions: {list(positions)}")
    for q in positions:
        if not 0 <= q < num_qubits:
            raise QubitError(
                f"qubit {q} out of range for a {num_qubits}-qubit register"
            )


def reorder_qubits(matrix: np.ndarray, order: Sequence[int]) -> np.ndarray:
    """Permute the qubit wires of an ``n``-qubit operator.

    ``order[j] = q`` means that wire ``j`` of ``matrix`` carries qubit ``q``
    of the result.  In other words the returned operator ``R`` satisfies
    ``R |x_0 ... x_{n-1}> = matrix acting on |x_{order[0]} ... >`` routed
    back to standard wire order.
    """
    num_qubits = len(order)
    _check_positions(order, num_qubits)
    dim = 2**num_qubits
    if matrix.shape != (dim, dim):
        raise QubitError(
            f"matrix of shape {matrix.shape} is not a {num_qubits}-qubit operator"
        )
    tensor = np.asarray(matrix, dtype=complex).reshape([2] * (2 * num_qubits))
    # Axis j of `tensor` (output side) carries qubit order[j]; we want axis q
    # to carry qubit q, so new axis q pulls from old axis position_of[q].
    position_of = [0] * num_qubits
    for j, q in enumerate(order):
        position_of[q] = j
    perm = position_of + [num_qubits + p for p in position_of]
    return tensor.transpose(perm).reshape(dim, dim)


def embed_operator(
    op: np.ndarray, positions: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Lift ``op`` acting on ``positions`` to the full ``num_qubits`` register.

    Implements the paper's convention that :math:`U_{\\bar q}` is implicitly
    ``U ⊗ I`` on the remaining qubits.  ``positions`` need not be contiguous
    or sorted; ``op``'s wire ``j`` is attached to qubit ``positions[j]``.
    """
    positions = list(positions)
    _check_positions(positions, num_qubits)
    k = len(positions)
    op = np.asarray(op, dtype=complex)
    if op.shape != (2**k, 2**k):
        raise QubitError(
            f"operator of shape {op.shape} does not act on {k} qubits"
        )
    if k == num_qubits and positions == list(range(num_qubits)):
        return op.copy()
    rest = [q for q in range(num_qubits) if q not in positions]
    full = np.kron(op, identity(len(rest)))
    return reorder_qubits(full, positions + rest)


def apply_unitary(
    state: np.ndarray, op: np.ndarray, positions: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply ``op`` on ``positions`` to a ket or a density operator.

    Kets are mapped to ``U|psi>``; density operators to ``U rho U†``.
    """
    full = embed_operator(op, positions, num_qubits)
    state = np.asarray(state, dtype=complex)
    if state.ndim == 1:
        return full @ state
    if state.ndim == 2:
        return full @ state @ full.conj().T
    raise QubitError(f"state with ndim={state.ndim} is neither ket nor density")
