"""Seeded random states and unitaries for property-based tests.

All generators take a :class:`numpy.random.Generator` so hypothesis and the
test suite can reproduce failures deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.kron import kron_all


def random_unitary(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Return a Haar-ish random unitary via QR of a Ginibre matrix."""
    dim = 2**num_qubits
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    # Fix the phases so the distribution does not favour the QR convention.
    phases = np.diag(r).copy()
    phases /= np.abs(phases)
    return q * phases


def random_ket(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Return a uniformly random normalised ket."""
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_density(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Return a full-rank random density operator (normalised)."""
    dim = 2**num_qubits
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = ginibre @ ginibre.conj().T
    return rho / rho.trace()


def random_product_density(
    num_qubits: int, rng: np.random.Generator
) -> np.ndarray:
    """Return a tensor product of independent one-qubit densities."""
    return kron_all(random_density(1, rng) for _ in range(num_qubits))
