"""Result and statistics types shared by all SAT backends."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SatStats:
    """Search statistics, reported by the benchmark harness."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0

    def __str__(self) -> str:
        return (
            f"decisions={self.decisions} propagations={self.propagations} "
            f"conflicts={self.conflicts} restarts={self.restarts} "
            f"learned={self.learned_clauses}"
        )


@dataclass
class SatResult:
    """Outcome of a satisfiability query.

    ``model`` maps DIMACS variable index -> truth value and is present
    exactly when ``is_sat`` — a satisfying model of formula (6.1)/(6.2) is
    a concrete counterexample to safe uncomputation.
    """

    is_sat: bool
    model: Optional[Dict[int, bool]] = None
    stats: SatStats = field(default_factory=SatStats)

    @property
    def is_unsat(self) -> bool:
        return not self.is_sat

    def __str__(self) -> str:
        return "sat" if self.is_sat else "unsat"
