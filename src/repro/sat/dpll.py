"""Plain DPLL solver: unit propagation + chronological backtracking.

Deliberately minimal — no learning, no watched literals, no restarts.
It exists as the ablation baseline (DESIGN.md §5, A2): the gap between
:class:`DpllSolver` and :class:`repro.sat.cdcl.CdclSolver` on the paper's
verification formulas quantifies what clause learning buys.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.boolfn.cnf import Cnf
from repro.errors import SolverCancelled, SolverError
from repro.sat.result import SatResult, SatStats


class DpllSolver:
    """Iterative DPLL over a CNF instance (single use).

    ``stop_check`` is polled at the search-loop head; returning True
    aborts with :class:`SolverCancelled` (see
    :class:`repro.sat.cdcl.CdclSolver`).
    """

    def __init__(
        self,
        cnf: Cnf,
        max_decisions: Optional[int] = None,
        stop_check: Optional[Callable[[], bool]] = None,
    ):
        self.num_vars = cnf.num_vars
        self.max_decisions = max_decisions
        self.stop_check = stop_check
        self.stats = SatStats()
        self._clauses = [list(dict.fromkeys(c)) for c in cnf.clauses]
        self._occurrences: Dict[int, List[int]] = {}
        for index, clause in enumerate(self._clauses):
            for lit in clause:
                self._occurrences.setdefault(lit, []).append(index)

    def solve(self) -> SatResult:
        """Run DPLL; returns SAT with a model or UNSAT."""
        assign: Dict[int, bool] = {}
        # Trail of (literal, was_decision) used for chronological undo.
        trail: List[Tuple[int, bool]] = []

        def value(lit: int) -> Optional[bool]:
            var = abs(lit)
            if var not in assign:
                return None
            return assign[var] == (lit > 0)

        def set_literal(lit: int, decision: bool) -> bool:
            assign[abs(lit)] = lit > 0
            trail.append((lit, decision))
            return True

        def propagate() -> bool:
            """Saturate unit propagation; False on conflict."""
            changed = True
            while changed:
                changed = False
                for clause in self._clauses:
                    unassigned = None
                    satisfied = False
                    count = 0
                    for lit in clause:
                        v = value(lit)
                        if v is True:
                            satisfied = True
                            break
                        if v is None:
                            unassigned = lit
                            count += 1
                    if satisfied:
                        continue
                    if count == 0:
                        return False
                    if count == 1:
                        self.stats.propagations += 1
                        set_literal(unassigned, decision=False)
                        changed = True
            return True

        def next_var() -> Optional[int]:
            for var in range(1, self.num_vars + 1):
                if var not in assign:
                    return var
            return None

        def backtrack() -> Optional[int]:
            """Undo to the last decision; return its literal (to be flipped)."""
            while trail:
                lit, decision = trail.pop()
                del assign[abs(lit)]
                if decision:
                    return lit
            return None

        # Main loop: decide positive phase first, flip on conflict.
        pending_flip: Optional[int] = None
        while True:
            if self.stop_check is not None and self.stop_check():
                raise SolverCancelled("DPLL run cancelled by caller")
            if pending_flip is None:
                ok = propagate()
            else:
                ok = set_literal(pending_flip, decision=False) and propagate()
                pending_flip = None
            if not ok:
                flipped = backtrack()
                if flipped is None:
                    return SatResult(False, stats=self.stats)
                self.stats.conflicts += 1
                pending_flip = -flipped
                continue
            var = next_var()
            if var is None:
                model = {v: assign[v] for v in range(1, self.num_vars + 1)}
                return SatResult(True, model=model, stats=self.stats)
            self.stats.decisions += 1
            if self.max_decisions and self.stats.decisions > self.max_decisions:
                raise SolverError(
                    f"decision budget {self.max_decisions} exhausted"
                )
            set_literal(var, decision=True)


def solve_cnf(cnf: Cnf, max_decisions: Optional[int] = None) -> SatResult:
    """Convenience wrapper mirroring :func:`repro.sat.cdcl.solve_cnf`."""
    return DpllSolver(cnf, max_decisions=max_decisions).solve()
