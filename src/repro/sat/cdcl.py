"""Conflict-driven clause learning SAT solver.

A compact MiniSat-style engine: two-literal watching, VSIDS branching with
exponential decay, first-UIP conflict analysis, non-chronological
backjumping, phase saving, Luby restarts and activity-based learned-clause
deletion.  It stands in for the native bit-blasting solvers the paper uses
(DESIGN.md §4) and is the default backend of
:func:`repro.verify.boolean.check_formula`.

The engine is **incremental** in the MiniSat sense: a solver outlives a
single query.  :meth:`CdclSolver.add_clause` grows the instance between
calls, and :meth:`CdclSolver.solve` takes *assumption literals* —
decisions forced at the first decision levels, undone when the call
returns — so one long-lived solver over a shared Tseitin instance can
discharge many per-qubit obligations while keeping its learned clauses,
variable activities and saved phases across calls.  Learned clauses are
consequences of the clause database alone (assumptions only ever enter
as decisions), so retaining them across differently-assumed calls is
sound.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.boolfn.cnf import Cnf
from repro.errors import SolverCancelled, SolverError
from repro.sat.result import SatResult, SatStats

_RESTART_BASE = 128


def _luby(index: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 ... (0-indexed)."""
    size, exponent = 1, 0
    while size < index + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        exponent -= 1
        index %= size
    return 1 << exponent


class _Clause:
    """A clause with an activity score; literals[0:2] are watched.

    ``focus_stamp``/``focus_hit`` memoise, per focused solve, whether
    the clause mentions any focus variable (see :meth:`CdclSolver.solve`).
    """

    __slots__ = ("literals", "learned", "activity", "focus_stamp", "focus_hit")

    def __init__(self, literals: List[int], learned: bool):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0
        self.focus_stamp = 0
        self.focus_hit = True


class CdclSolver:
    """Solve a CNF instance, incrementally growable between calls.

    Parameters
    ----------
    cnf:
        The initial instance (from :mod:`repro.boolfn.cnf` or
        hand-built); ``None`` starts an empty solver that is grown with
        :meth:`add_clause` — the incremental-service pattern.
    max_conflicts:
        Optional conflict budget (lifetime total across calls);
        exceeding it raises :class:`SolverError` so benchmark sweeps
        fail loudly rather than silently hang.
    stop_check:
        Optional zero-argument callable polled at the search-loop head;
        returning True aborts the run with :class:`SolverCancelled`
        (how a portfolio race reclaims its losers).  Reassignable
        between :meth:`solve` calls.
    """

    def __init__(
        self,
        cnf: Optional[Cnf] = None,
        max_conflicts: Optional[int] = None,
        stop_check: Optional[Callable[[], bool]] = None,
    ):
        self.num_vars = 0
        self.max_conflicts = max_conflicts
        self.stop_check = stop_check
        self.stats = SatStats()

        self._assign: List[int] = [0]  # 0 / +1 / -1, 1-indexed
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._heap: List[tuple] = []  # (-activity, var), lazy deletion
        self._saved_phase: List[bool] = [False]

        self._cla_inc = 1.0
        self._cla_decay = 0.999

        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._watches: Dict[int, List[_Clause]] = {}

        self._focus_set: Optional[frozenset] = None
        self._focus_stamp = 0
        #: Watchers set aside for the duration of one focused solve,
        #: keyed by the falsified literal they watch.  Parking means an
        #: out-of-cone clause is skipped once per probe instead of once
        #: per re-propagation of its watched literal.
        self._parked: Dict[int, List[_Clause]] = {}
        self._seen: List[bool] = [False]
        self._seen_touched: List[int] = []

        self._ok = True
        if cnf is not None:
            self.ensure_vars(cnf.num_vars)
            for raw in cnf.clauses:
                self.add_clause(raw)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe to at least ``num_vars``."""
        for var in range(self.num_vars + 1, num_vars + 1):
            self._assign.append(0)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._saved_phase.append(False)
            self._seen.append(False)
            heapq.heappush(self._heap, (0.0, var))
        self.num_vars = max(self.num_vars, num_vars)

    def add_clause(self, literals: List[int]) -> bool:
        """Add a problem clause between calls (variables auto-grown).

        Returns False when the clause makes the instance unsatisfiable
        outright (the solver then answers UNSAT forever).  Must not be
        called mid-:meth:`solve`; the solver is at decision level 0
        between calls, where level-0 simplification stays sound.
        """
        if literals:
            self.ensure_vars(max(abs(lit) for lit in literals))
        if not self._ok:
            return False
        if self._decision_level() != 0:  # pragma: no cover - API misuse
            raise SolverError("add_clause requires decision level 0")
        if not self._add_clause(sorted(set(literals), key=abs), learned=False):
            self._ok = False
        return self._ok

    @property
    def clause_count(self) -> int:
        """Problem clauses currently attached (units excluded)."""
        return len(self._clauses)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        focus: Optional[Sequence[int]] = None,
    ) -> SatResult:
        """Run the CDCL loop to completion under optional assumptions.

        Assumptions are literals decided (in order) at the first
        decision levels and undone on return: UNSAT means *unsat under
        these assumptions*, not necessarily globally.  State learned
        during the call — clauses, activities, phases — persists, so
        successive assumption probes against one instance get steadily
        cheaper.

        ``focus`` restricts the search to the given variables: branching
        picks only focus variables, propagation at decision levels
        above zero skips clauses that mention none of them, and the
        call answers SAT as soon as propagation leaves every focus
        variable assigned without conflict.  All three are only sound
        when the clause database is *definitional* outside the focus
        cone — every non-focus variable is a Tseitin-defined function
        of others, so any consistent focus assignment extends to a full
        model and out-of-cone clauses can neither conflict nor prune.
        The caller owns that invariant.  Level-0 propagation always
        scans every clause, so watch invariants persist intact across
        differently-focused probes.  A focused SAT model covers only
        the assigned variables; absent entries are unconstrained.
        """
        for lit in assumptions:
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError(f"assumption literal {lit} out of range")
        if focus is not None:
            for var in focus:
                if var <= 0 or var > self.num_vars:
                    raise SolverError(f"focus variable {var} out of range")
        try:
            if focus is not None:
                self._focus_set = frozenset(focus)
                self._focus_stamp += 1
            return self._search(
                tuple(assumptions),
                None if focus is None else tuple(focus),
            )
        finally:
            self._focus_set = None
            if self._parked:
                for lit, clauses in self._parked.items():
                    existing = self._watches.get(lit)
                    if existing is None:
                        self._watches[lit] = clauses
                    else:
                        existing.extend(clauses)
                self._parked = {}
            self._backtrack(0)

    def probe(
        self,
        literal: int,
        focus: Optional[Sequence[int]] = None,
    ) -> SatResult:
        """Decide satisfiability with ``literal`` *temporarily asserted*.

        Same answer as ``solve(assumptions=[literal])``, different
        mechanics: the literal is enqueued as a true level-0 unit for
        the duration of the call, so the search runs with fresh-solver
        economics — learned clauses do not drag the assumption literal
        along and no assumption prefix is re-extended after every
        backjump to level 0.  The price is that clauses learned under
        the assertion are entailed only by ``instance ∧ literal``, so
        the probe rolls back its level-0 trail extension and detaches
        everything it learned before returning.  Variable activities
        and saved phases persist — the cheap, sound-to-share part of
        the probe's work — which is what makes a probe over a warm
        solver beat a cold fresh instance.

        Requires decision level 0 (i.e. between ``solve`` calls).  A
        ``False`` result means unsat *under the literal*; the instance
        itself stays usable, and ``add_clause([-literal])`` is then an
        equivalence-preserving follow-up.
        """
        if literal == 0 or abs(literal) > self.num_vars:
            raise SolverError(f"probe literal {literal} out of range")
        if not self._ok:
            return SatResult(False, stats=self.stats)
        if self._trail_lim:  # pragma: no cover - API misuse
            raise SolverError("probe requires decision level 0")
        if self._value(literal) == -1:
            # Entailed false at level 0 — refuted without searching.
            return SatResult(False, stats=self.stats)
        trail_mark = len(self._trail)
        qhead_mark = self._qhead
        before_ids = set(map(id, self._learned))
        try:
            if self._value(literal) == 0:
                self._enqueue(literal, None)
            return self.solve(focus=focus)
        finally:
            for lit in self._trail[trail_mark:]:
                var = lit if lit > 0 else -lit
                self._assign[var] = 0
                self._reason[var] = None
                heapq.heappush(self._heap, (-self._activity[var], var))
            del self._trail[trail_mark:]
            # Rewind the propagation head to where it was *before* the
            # probe, not to the trail mark: units enqueued but not yet
            # propagated pre-probe (fresh construction, an asserted
            # ¬root) may hide a level-0 conflict of the instance
            # itself, and resetting ``_ok`` below discards its
            # discovery — the next solve must re-propagate them.
            self._qhead = qhead_mark
            new_ids = {
                id(c) for c in self._learned if id(c) not in before_ids
            }
            if new_ids:
                if focus is not None:
                    # Clauses learned under a focused probe mention
                    # cone variables only, so only those watch slots
                    # can hold them.
                    keys = [
                        key
                        for var in focus
                        for key in (var, -var)
                        if key in self._watches
                    ]
                else:
                    keys = list(self._watches)
                for key in keys:
                    lst = self._watches[key]
                    for c in lst:
                        if id(c) in new_ids:
                            self._watches[key] = [
                                c for c in lst if id(c) not in new_ids
                            ]
                            break
                self._learned = [
                    c for c in self._learned if id(c) not in new_ids
                ]
            self._ok = True

    def _pick_focus_var(self, focus: Tuple[int, ...]) -> Optional[int]:
        """Highest-activity unassigned focus variable, if any."""
        best = None
        best_activity = -1.0
        for var in focus:
            if self._assign[var] == 0 and self._activity[var] > best_activity:
                best = var
                best_activity = self._activity[var]
        return best

    def _search(
        self,
        assumptions: Tuple[int, ...],
        focus: Optional[Tuple[int, ...]] = None,
    ) -> SatResult:
        if not self._ok:
            return SatResult(False, stats=self.stats)
        if self._propagate() is not None:
            self._ok = False
            return SatResult(False, stats=self.stats)

        restart_index = 0
        conflicts_until_restart = _RESTART_BASE * _luby(restart_index)
        conflicts_since_restart = 0
        max_learned = max(2000, 2 * len(self._clauses))

        while True:
            if self.stop_check is not None and self.stop_check():
                raise SolverCancelled("CDCL run cancelled by caller")
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self.max_conflicts and self.stats.conflicts > self.max_conflicts:
                    raise SolverError(
                        f"conflict budget {self.max_conflicts} exhausted"
                    )
                if self._decision_level() == 0:
                    self._ok = False
                    return SatResult(False, stats=self.stats)
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                self._attach_learned(learnt)
                self._decay_activities()
            else:
                # Focused probes search a cone-sized space where the
                # heavy-tail runtimes restarts hedge against do not
                # arise; restarting would only throw away the probe's
                # assumption prefix work.
                if focus is None and conflicts_since_restart >= conflicts_until_restart:
                    restart_index += 1
                    conflicts_until_restart = _RESTART_BASE * _luby(restart_index)
                    conflicts_since_restart = 0
                    self.stats.restarts += 1
                    self._backtrack(0)
                    continue
                if len(self._learned) > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                # Re-extend the assumption prefix (restarts and
                # backjumps may have unwound part of it).
                lit = None
                failed = False
                while self._decision_level() < len(assumptions):
                    candidate = assumptions[self._decision_level()]
                    value = self._value(candidate)
                    if value == 1:
                        # Already holds: open a vacuous level so the
                        # prefix position / decision level map stays
                        # aligned (the MiniSat convention).
                        self._trail_lim.append(len(self._trail))
                    elif value == -1:
                        failed = True
                        break
                    else:
                        lit = candidate
                        break
                if failed:
                    # An assumption contradicts the forced assignment:
                    # unsat under assumptions (the database itself may
                    # well stay satisfiable).
                    return SatResult(False, stats=self.stats)
                if lit is not None:
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit, None)
                    continue
                var = (
                    self._pick_focus_var(focus)
                    if focus is not None
                    else self._pick_branch_var()
                )
                if var is None:
                    if focus is not None:
                        model = {
                            v: self._assign[v] > 0
                            for v in range(1, self.num_vars + 1)
                            if self._assign[v] != 0
                        }
                    else:
                        model = {
                            v: self._assign[v] > 0
                            for v in range(1, self.num_vars + 1)
                        }
                    return SatResult(True, model=model, stats=self.stats)
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                lit = var if self._saved_phase[var] else -var
                self._enqueue(lit, None)

    # ------------------------------------------------------------------ #
    # Clause management
    # ------------------------------------------------------------------ #

    def _add_clause(self, literals: List[int], learned: bool) -> bool:
        """Attach a clause at level 0. Returns False on immediate conflict."""
        literals = [l for l in literals if self._value(l) != -1 or learned]
        if not learned:
            if any(self._value(l) == 1 for l in literals):
                return True
            if any(-l in literals for l in literals):
                return True  # tautology
            if not literals:
                return False
            if len(literals) == 1:
                return self._enqueue(literals[0], None)
        clause = _Clause(literals, learned)
        if len(literals) >= 2:
            (self._clauses if not learned else self._learned).append(clause)
            self._watch(clause.literals[0], clause)
            self._watch(clause.literals[1], clause)
        return True

    def _watch(self, lit: int, clause: _Clause) -> None:
        self._watches.setdefault(-lit, []).append(clause)

    def _attach_learned(self, learnt: List[int]) -> None:
        """Install a learned clause; learnt[0] is the asserting literal."""
        self.stats.learned_clauses += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learned=True)
        clause.activity = self._cla_inc
        self._learned.append(clause)
        self._watch(learnt[0], clause)
        self._watch(learnt[1], clause)
        self._enqueue(learnt[0], clause)

    def _reduce_learned(self) -> None:
        """Drop the less active half of the learned clauses."""
        self._learned.sort(key=lambda c: c.activity)
        half = len(self._learned) // 2
        locked = {
            id(self._reason[abs(l)])
            for l in self._trail
            if self._reason[abs(l)] is not None
        }
        dropped_ids = {
            id(c)
            for c in self._learned[:half]
            if id(c) not in locked and len(c.literals) > 2
        }
        self._learned = [c for c in self._learned if id(c) not in dropped_ids]
        for key in self._watches:
            self._watches[key] = [
                c for c in self._watches[key] if id(c) not in dropped_ids
            ]
        for key in self._parked:
            self._parked[key] = [
                c for c in self._parked[key] if id(c) not in dropped_ids
            ]

    # ------------------------------------------------------------------ #
    # Assignment and propagation
    # ------------------------------------------------------------------ #

    def _value(self, lit: int) -> int:
        v = self._assign[abs(lit)]
        return v if lit > 0 else -v

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        if self._value(lit) != 0:
            return self._value(lit) == 1
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._saved_phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Boolean constraint propagation; returns a conflict clause or None.

        Under a focused solve, clauses outside the focus cone are
        definitional noise: they can neither conflict nor prune the
        cone search, so above level 0 they are parked (watches unmoved
        — sound, because every skipped falsification is unwound before
        the probe returns).  The body inlines value lookups and the
        enqueue: this loop is the solver's entire inner loop and the
        attribute/call overhead would otherwise dominate it.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        level = self._level
        reason = self._reason
        phase = self._saved_phase
        restrict = self._focus_set is not None and len(self._trail_lim) > 0
        parked = self._parked
        focus = self._focus_set
        stamp = self._focus_stamp
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            watchers = watches.get(lit)
            if not restrict and parked:
                # Level-0 propagation inside a focused solve must scan
                # everything — wake whatever was parked for this literal.
                stashed = parked.pop(lit, None)
                if stashed is not None:
                    if watchers is None:
                        watchers = watches[lit] = stashed
                    else:
                        watchers.extend(stashed)
            if not watchers:
                continue
            kept: List[_Clause] = []
            kept_append = kept.append
            false_lit = -lit
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.literals
                if restrict:
                    # A clause is awake only when *wholly* inside the
                    # cone: a defining clause of a cone node mentions
                    # cone variables exclusively, so this keeps exactly
                    # the cone sub-instance (plus cone-local learned
                    # clauses), while boundary clauses of foreign cones
                    # sharing a subterm stay parked instead of rippling
                    # every assignment one layer outward.  Parking runs
                    # before the satisfied-clause fast path on purpose:
                    # foreign clauses satisfied at level 0 (e.g. by an
                    # asserted refuted root) would otherwise be kept and
                    # rescanned on every propagation of this literal.
                    if clause.focus_stamp != stamp:
                        clause.focus_stamp = stamp
                        hit = True
                        for l in lits:
                            if (l if l > 0 else -l) not in focus:
                                hit = False
                                break
                        clause.focus_hit = hit
                    if not clause.focus_hit:
                        if lit in parked:
                            parked[lit].append(clause)
                        else:
                            parked[lit] = [clause]
                        continue
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                l0 = lits[0]
                v0 = assign[l0] if l0 > 0 else -assign[-l0]
                if v0 == 1:
                    kept_append(clause)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    if (assign[lk] if lk > 0 else -assign[-lk]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        other = -lits[1]
                        if other in watches:
                            watches[other].append(clause)
                        else:
                            watches[other] = [clause]
                        moved = True
                        break
                if moved:
                    continue
                kept_append(clause)
                if v0 == -1:
                    kept.extend(watchers[i:])
                    watches[lit] = kept
                    self._qhead = len(trail)
                    return clause
                var = l0 if l0 > 0 else -l0
                assign[var] = 1 if l0 > 0 else -1
                level[var] = len(self._trail_lim)
                reason[var] = clause
                phase[var] = l0 > 0
                trail.append(l0)
            watches[lit] = kept
        return None

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self._trail_lim[target_level]
        refill = self._focus_set is None
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._assign[var] = 0
            self._reason[var] = None
            if refill:
                heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[target_level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #

    def _analyze(self, conflict: _Clause):
        learnt: List[int] = []
        # One persistent buffer instead of an O(num_vars) allocation per
        # conflict — on a large shared instance the allocation dwarfs
        # the handful of entries a cone-local conflict actually touches.
        seen = self._seen
        touched = self._seen_touched
        counter = 0
        p: Optional[int] = None
        index = len(self._trail) - 1
        current_level = self._decision_level()
        reason_lits = conflict.literals

        while True:
            if conflict is not None and conflict.learned:
                conflict.activity += self._cla_inc
            for q in reason_lits:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    touched.append(var)
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            p_lit = self._trail[index]
            index -= 1
            counter -= 1
            seen[abs(p_lit)] = False
            if counter == 0:
                p = -p_lit
                break
            p = p_lit
            conflict = self._reason[abs(p_lit)]
            reason_lits = conflict.literals

        learnt = [p] + self._minimize_learnt(learnt, seen)
        for var in touched:
            seen[var] = False
        touched.clear()
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the learned clause.
        levels = sorted((self._level[abs(l)] for l in learnt[1:]), reverse=True)
        backjump = levels[0]
        # Put a literal of the backjump level in watch position 1.
        for k in range(1, len(learnt)):
            if self._level[abs(learnt[k])] == backjump:
                learnt[1], learnt[k] = learnt[k], learnt[1]
                break
        return learnt, backjump

    def _minimize_learnt(self, literals: List[int], seen: List[bool]) -> List[int]:
        """Drop learnt literals implied by the rest (self-subsumption).

        A literal whose reason chain bottoms out entirely in other
        clause literals (or level-0 facts) adds nothing to the clause.
        This matters most under assumption probes: cascade literals
        propagated from the assumption all reduce to the assumption
        literal itself and vanish, keeping learnt clauses as short as
        a fresh cone-local run would produce.
        """
        return [lit for lit in literals if not self._lit_redundant(lit, seen)]

    def _lit_redundant(self, lit: int, seen: List[bool]) -> bool:
        if self._reason[abs(lit)] is None:
            return False
        stack = [abs(lit)]
        marked: List[int] = []
        while stack:
            var = stack.pop()
            for q in self._reason[var].literals:
                qvar = abs(q)
                if qvar == var or seen[qvar] or self._level[qvar] == 0:
                    continue
                if self._reason[qvar] is None:
                    # Reached a decision outside the clause: not
                    # redundant; undo the speculative marks.
                    for m in marked:
                        seen[m] = False
                    return False
                seen[qvar] = True
                marked.append(qvar)
                stack.append(qvar)
        # Proven redundant: the speculative marks stand (each visited
        # variable is itself implied by the clause), so record them for
        # the end-of-analysis wipe.
        self._seen_touched.extend(marked)
        return True

    # ------------------------------------------------------------------ #
    # Heuristics
    # ------------------------------------------------------------------ #

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        # Focused solves pick branch variables by scanning the focus
        # activity array, never the heap — skip the dead heap traffic.
        # (_pick_branch_var's linear-scan fallback keeps unfocused
        # solves correct even with entries missing from the heap.)
        if self._focus_set is None:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay
        if self._cla_inc > 1e100:
            for clause in self._learned:
                clause.activity *= 1e-100
            self._cla_inc *= 1e-100

    def _pick_branch_var(self) -> Optional[int]:
        while self._heap:
            _, var = heapq.heappop(self._heap)
            if self._assign[var] == 0:
                return var
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == 0:
                return var
        return None


def solve_cnf(cnf: Cnf, max_conflicts: Optional[int] = None) -> SatResult:
    """Convenience wrapper: build a solver for ``cnf`` and run it."""
    return CdclSolver(cnf, max_conflicts=max_conflicts).solve()
