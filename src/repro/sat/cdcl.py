"""Conflict-driven clause learning SAT solver.

A compact MiniSat-style engine: two-literal watching, VSIDS branching with
exponential decay, first-UIP conflict analysis, non-chronological
backjumping, phase saving, Luby restarts and activity-based learned-clause
deletion.  It stands in for the native bit-blasting solvers the paper uses
(DESIGN.md §4) and is the default backend of
:func:`repro.verify.boolean.check_formula`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from repro.boolfn.cnf import Cnf
from repro.errors import SolverCancelled, SolverError
from repro.sat.result import SatResult, SatStats

_RESTART_BASE = 128


def _luby(index: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 ... (0-indexed)."""
    size, exponent = 1, 0
    while size < index + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        exponent -= 1
        index %= size
    return 1 << exponent


class _Clause:
    """A clause with an activity score; literals[0:2] are watched."""

    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


class CdclSolver:
    """Solve one CNF instance; instances are single-use.

    Parameters
    ----------
    cnf:
        The instance (from :mod:`repro.boolfn.cnf` or hand-built).
    max_conflicts:
        Optional conflict budget; exceeding it raises :class:`SolverError`
        so benchmark sweeps fail loudly rather than silently hang.
    stop_check:
        Optional zero-argument callable polled at the search-loop head;
        returning True aborts the run with :class:`SolverCancelled`
        (how a portfolio race reclaims its losers).
    """

    def __init__(
        self,
        cnf: Cnf,
        max_conflicts: Optional[int] = None,
        stop_check: Optional[Callable[[], bool]] = None,
    ):
        self.num_vars = cnf.num_vars
        self.max_conflicts = max_conflicts
        self.stop_check = stop_check
        self.stats = SatStats()

        self._assign: List[int] = [0] * (self.num_vars + 1)  # 0 / +1 / -1
        self._level: List[int] = [0] * (self.num_vars + 1)
        self._reason: List[Optional[_Clause]] = [None] * (self.num_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._activity: List[float] = [0.0] * (self.num_vars + 1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._heap: List[tuple] = []  # (-activity, var), lazy deletion
        self._saved_phase: List[bool] = [False] * (self.num_vars + 1)

        self._cla_inc = 1.0
        self._cla_decay = 0.999

        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._watches: Dict[int, List[_Clause]] = {}

        self._ok = True
        for raw in cnf.clauses:
            if not self._add_clause(sorted(set(raw), key=abs), learned=False):
                self._ok = False
                break
        for var in range(1, self.num_vars + 1):
            heapq.heappush(self._heap, (0.0, var))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def solve(self) -> SatResult:
        """Run the CDCL loop to completion."""
        if not self._ok:
            return SatResult(False, stats=self.stats)
        if self._propagate() is not None:
            return SatResult(False, stats=self.stats)

        restart_index = 0
        conflicts_until_restart = _RESTART_BASE * _luby(restart_index)
        conflicts_since_restart = 0
        max_learned = max(2000, 2 * len(self._clauses))

        while True:
            if self.stop_check is not None and self.stop_check():
                raise SolverCancelled("CDCL run cancelled by caller")
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self.max_conflicts and self.stats.conflicts > self.max_conflicts:
                    raise SolverError(
                        f"conflict budget {self.max_conflicts} exhausted"
                    )
                if self._decision_level() == 0:
                    return SatResult(False, stats=self.stats)
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                self._attach_learned(learnt)
                self._decay_activities()
            else:
                if conflicts_since_restart >= conflicts_until_restart:
                    restart_index += 1
                    conflicts_until_restart = _RESTART_BASE * _luby(restart_index)
                    conflicts_since_restart = 0
                    self.stats.restarts += 1
                    self._backtrack(0)
                    continue
                if len(self._learned) > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                var = self._pick_branch_var()
                if var is None:
                    model = {
                        v: self._assign[v] > 0
                        for v in range(1, self.num_vars + 1)
                    }
                    return SatResult(True, model=model, stats=self.stats)
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                lit = var if self._saved_phase[var] else -var
                self._enqueue(lit, None)

    # ------------------------------------------------------------------ #
    # Clause management
    # ------------------------------------------------------------------ #

    def _add_clause(self, literals: List[int], learned: bool) -> bool:
        """Attach a clause at level 0. Returns False on immediate conflict."""
        literals = [l for l in literals if self._value(l) != -1 or learned]
        if not learned:
            if any(self._value(l) == 1 for l in literals):
                return True
            if any(-l in literals for l in literals):
                return True  # tautology
            if not literals:
                return False
            if len(literals) == 1:
                return self._enqueue(literals[0], None)
        clause = _Clause(literals, learned)
        if len(literals) >= 2:
            (self._clauses if not learned else self._learned).append(clause)
            self._watch(clause.literals[0], clause)
            self._watch(clause.literals[1], clause)
        return True

    def _watch(self, lit: int, clause: _Clause) -> None:
        self._watches.setdefault(-lit, []).append(clause)

    def _attach_learned(self, learnt: List[int]) -> None:
        """Install a learned clause; learnt[0] is the asserting literal."""
        self.stats.learned_clauses += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learned=True)
        clause.activity = self._cla_inc
        self._learned.append(clause)
        self._watch(learnt[0], clause)
        self._watch(learnt[1], clause)
        self._enqueue(learnt[0], clause)

    def _reduce_learned(self) -> None:
        """Drop the less active half of the learned clauses."""
        self._learned.sort(key=lambda c: c.activity)
        half = len(self._learned) // 2
        locked = {
            id(self._reason[abs(l)])
            for l in self._trail
            if self._reason[abs(l)] is not None
        }
        dropped_ids = {
            id(c)
            for c in self._learned[:half]
            if id(c) not in locked and len(c.literals) > 2
        }
        self._learned = [c for c in self._learned if id(c) not in dropped_ids]
        for key in self._watches:
            self._watches[key] = [
                c for c in self._watches[key] if id(c) not in dropped_ids
            ]

    # ------------------------------------------------------------------ #
    # Assignment and propagation
    # ------------------------------------------------------------------ #

    def _value(self, lit: int) -> int:
        v = self._assign[abs(lit)]
        return v if lit > 0 else -v

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        if self._value(lit) != 0:
            return self._value(lit) == 1
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._saved_phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Boolean constraint propagation; returns a conflict clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            kept: List[_Clause] = []
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                lits = clause.literals
                false_lit = -lit
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._value(lits[0]) == 1:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watch(lits[1], clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(lits[0]) == -1:
                    kept.extend(watchers[i:])
                    self._watches[lit] = kept
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(lits[0], clause)
            self._watches[lit] = kept
        return None

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self._trail_lim[target_level]
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._assign[var] = 0
            self._reason[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[target_level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #

    def _analyze(self, conflict: _Clause):
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self._trail) - 1
        current_level = self._decision_level()
        reason_lits = conflict.literals

        while True:
            if conflict is not None and conflict.learned:
                conflict.activity += self._cla_inc
            for q in reason_lits:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            p_lit = self._trail[index]
            index -= 1
            counter -= 1
            seen[abs(p_lit)] = False
            if counter == 0:
                p = -p_lit
                break
            p = p_lit
            conflict = self._reason[abs(p_lit)]
            reason_lits = conflict.literals

        learnt = [p] + learnt
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the learned clause.
        levels = sorted((self._level[abs(l)] for l in learnt[1:]), reverse=True)
        backjump = levels[0]
        # Put a literal of the backjump level in watch position 1.
        for k in range(1, len(learnt)):
            if self._level[abs(learnt[k])] == backjump:
                learnt[1], learnt[k] = learnt[k], learnt[1]
                break
        return learnt, backjump

    # ------------------------------------------------------------------ #
    # Heuristics
    # ------------------------------------------------------------------ #

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay
        if self._cla_inc > 1e100:
            for clause in self._learned:
                clause.activity *= 1e-100
            self._cla_inc *= 1e-100

    def _pick_branch_var(self) -> Optional[int]:
        while self._heap:
            _, var = heapq.heappop(self._heap)
            if self._assign[var] == 0:
                return var
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == 0:
                return var
        return None


def solve_cnf(cnf: Cnf, max_conflicts: Optional[int] = None) -> SatResult:
    """Convenience wrapper: build a solver for ``cnf`` and run it."""
    return CdclSolver(cnf, max_conflicts=max_conflicts).solve()
