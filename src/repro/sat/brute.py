"""Brute-force SAT by enumeration — the differential-testing oracle.

Only usable for small variable counts; the property-based tests compare
CDCL and DPLL verdicts against this on random instances.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.boolfn.cnf import Cnf
from repro.errors import SolverCancelled, SolverError
from repro.sat.result import SatResult, SatStats


def brute_force_solve(
    cnf: Cnf,
    max_vars: int = 24,
    stop_check: Optional[Callable[[], bool]] = None,
) -> SatResult:
    """Try all ``2**num_vars`` assignments in index order."""
    n = cnf.num_vars
    if n > max_vars:
        raise SolverError(f"brute force caps at {max_vars} variables, got {n}")
    stats = SatStats()
    for word in range(2**n):
        if (
            stop_check is not None
            and word % 4096 == 0
            and stop_check()
        ):
            raise SolverCancelled("enumeration cancelled by caller")
        stats.decisions += 1
        if _satisfies(cnf, word):
            model = {v: bool((word >> (v - 1)) & 1) for v in range(1, n + 1)}
            return SatResult(True, model=model, stats=stats)
    return SatResult(False, stats=stats)


def _satisfies(cnf: Cnf, word: int) -> bool:
    for clause in cnf.clauses:
        if not any(
            bool((word >> (abs(lit) - 1)) & 1) == (lit > 0) for lit in clause
        ):
            return False
    return True
