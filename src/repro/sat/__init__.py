"""SAT solving — half of system S9.

The paper discharges formulas (6.1)/(6.2) with CVC5 and Bitwuzla; those
native solvers are unavailable offline, so this package provides
self-contained replacements (see DESIGN.md §4):

* :class:`repro.sat.cdcl.CdclSolver` — conflict-driven clause learning with
  two-literal watching, VSIDS, 1-UIP learning, phase saving, Luby restarts
  and clause-database reduction (the Bitwuzla stand-in).  The solver is
  **incremental**: ``add_clause`` extends a live instance between
  ``solve`` calls, ``solve(assumptions=...)`` answers under a temporary
  prefix, ``solve(focus=...)`` restricts branching and propagation to a
  cone of variables, and ``probe(literal, focus=...)`` asserts one root
  literal with fresh-solver economics and rolls it back — the mechanism
  the ``cdcl`` checker backend uses to discharge every per-qubit
  obligation off one shared Tseitin instance;
* :class:`repro.sat.dpll.DpllSolver` — plain DPLL with unit propagation
  (the ablation baseline);
* :func:`repro.sat.brute.brute_force_solve` — exhaustive enumeration, used
  as the differential-testing oracle.
"""

from repro.sat.result import SatResult, SatStats
from repro.sat.cdcl import CdclSolver
from repro.sat.dpll import DpllSolver
from repro.sat.brute import brute_force_solve

__all__ = [
    "CdclSolver",
    "DpllSolver",
    "SatResult",
    "SatStats",
    "brute_force_solve",
]
