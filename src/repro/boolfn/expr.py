"""Hash-consed Boolean expression DAGs.

Design notes
------------
* All nodes are created through an :class:`ExprBuilder`, which interns
  structurally identical nodes, so node identity (``is`` / ``uid``) decides
  structural equality in O(1).  This is what makes the paper's
  ``x ⊕ x = 0`` rule cheap: duplicate XOR children are literally the same
  object.
* Negation is canonicalised to ``x ⊕ 1``; implication to ``¬a ∨ b``.  The
  node kinds are therefore just ``const``, ``var``, ``and``, ``xor``,
  ``or``.
* Constructors simplify locally (constant folding, flattening,
  idempotence, XOR-pair cancellation).  The cancellation can be disabled
  (``simplify_xor=False``) — this is ablation A1 of DESIGN.md and mirrors
  running the paper's reduction without the Figure 6.1 simplification.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import BooleanError

CONST = "const"
VAR = "var"
AND = "and"
XOR = "xor"
OR = "or"


class Expr:
    """One interned node of a Boolean DAG.  Create via :class:`ExprBuilder`."""

    __slots__ = ("kind", "children", "name", "value", "uid", "builder")

    def __init__(
        self,
        kind: str,
        children: Tuple["Expr", ...],
        name: Optional[str],
        value: Optional[bool],
        uid: int,
        builder: "ExprBuilder",
    ):
        self.kind = kind
        self.children = children
        self.name = name
        self.value = value
        self.uid = uid
        self.builder = builder

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other) -> bool:
        return self is other

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    @property
    def is_true(self) -> bool:
        return self.kind == CONST and self.value is True

    @property
    def is_false(self) -> bool:
        return self.kind == CONST and self.value is False

    def variables(self) -> FrozenSet[str]:
        """All variable names reachable from this node (memoised)."""
        return self.builder.variables_of(self)

    def dag_size(self) -> int:
        """Number of distinct nodes reachable from this one."""
        seen: Set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            stack.extend(node.children)
        return len(seen)

    def __repr__(self) -> str:
        return f"Expr<{self.builder.to_string(self, limit=80)}>"


class ExprBuilder:
    """Factory and intern table for :class:`Expr` nodes.

    One builder per verification run; nodes from different builders must
    not be mixed (enforced on construction).
    """

    def __init__(self, simplify_xor: bool = True):
        self.simplify_xor = simplify_xor
        self._intern: Dict[Tuple, Expr] = {}
        self._uid = 0
        # Interning must stay race-free when worker threads of the batch
        # engine build formulas concurrently: a duplicated uid would
        # corrupt every uid-keyed cache downstream.
        self._intern_lock = threading.Lock()
        self._vars: Dict[str, Expr] = {}
        self._variables_cache: Dict[int, FrozenSet[str]] = {}
        self.false = self._make(CONST, (), None, False)
        self.true = self._make(CONST, (), None, True)

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #

    def _make(
        self,
        kind: str,
        children: Tuple[Expr, ...],
        name: Optional[str],
        value: Optional[bool],
    ) -> Expr:
        key = (kind, tuple(c.uid for c in children), name, value)
        node = self._intern.get(key)
        if node is None:
            with self._intern_lock:
                node = self._intern.get(key)
                if node is None:
                    node = Expr(kind, children, name, value, self._uid, self)
                    self._uid += 1
                    self._intern[key] = node
        return node

    def _check(self, nodes: Iterable[Expr]) -> None:
        for node in nodes:
            if node.builder is not self:
                raise BooleanError("mixing Expr nodes from different builders")

    @property
    def node_count(self) -> int:
        """Total number of interned nodes (a proxy for formula size)."""
        return self._uid

    # ------------------------------------------------------------------ #
    # Leaf constructors
    # ------------------------------------------------------------------ #

    def const(self, value: bool) -> Expr:
        return self.true if value else self.false

    def var(self, name: str) -> Expr:
        """Return the (unique) variable node called ``name``."""
        node = self._vars.get(name)
        if node is None:
            node = self._make(VAR, (), name, None)
            self._vars[name] = node
        return node

    # ------------------------------------------------------------------ #
    # Connectives
    # ------------------------------------------------------------------ #

    def and_(self, args: Sequence[Expr]) -> Expr:
        """Conjunction with flattening, constant folding and idempotence."""
        self._check(args)
        flat: List[Expr] = []
        seen: Set[int] = set()
        for arg in _flatten(args, AND):
            if arg.is_false:
                return self.false
            if arg.is_true or arg.uid in seen:
                continue
            seen.add(arg.uid)
            flat.append(arg)
        # x AND (x XOR 1) = 0
        for arg in flat:
            if arg.kind == XOR and self.true in arg.children:
                stripped = self.xor_([c for c in arg.children if c is not self.true])
                if stripped.uid in seen:
                    return self.false
        if not flat:
            return self.true
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda n: n.uid)
        return self._make(AND, tuple(flat), None, None)

    def xor_(self, args: Sequence[Expr]) -> Expr:
        """Exclusive-or with flattening, constant folding and (optionally)
        the paper's pair cancellation ``x ⊕ x = 0``."""
        self._check(args)
        parity = False
        flat: List[Expr] = []
        for arg in _flatten(args, XOR):
            if arg.kind == CONST:
                parity ^= bool(arg.value)
                continue
            flat.append(arg)
        if self.simplify_xor:
            counts: Dict[int, int] = {}
            order: List[Expr] = []
            for arg in flat:
                if arg.uid not in counts:
                    order.append(arg)
                counts[arg.uid] = counts.get(arg.uid, 0) + 1
            flat = [arg for arg in order if counts[arg.uid] % 2 == 1]
        if not flat:
            return self.const(parity)
        flat.sort(key=lambda n: n.uid)
        if parity:
            flat.append(self.true)
        if len(flat) == 1:
            return flat[0]
        return self._make(XOR, tuple(flat), None, None)

    def or_(self, args: Sequence[Expr]) -> Expr:
        """Disjunction with flattening, constant folding and idempotence."""
        self._check(args)
        flat: List[Expr] = []
        seen: Set[int] = set()
        for arg in _flatten(args, OR):
            if arg.is_true:
                return self.true
            if arg.is_false or arg.uid in seen:
                continue
            seen.add(arg.uid)
            flat.append(arg)
        if not flat:
            return self.false
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda n: n.uid)
        return self._make(OR, tuple(flat), None, None)

    def not_(self, arg: Expr) -> Expr:
        """Negation, canonicalised to ``arg ⊕ 1``."""
        return self.xor_([arg, self.true])

    def implies(self, premise: Expr, conclusion: Expr) -> Expr:
        """Implication ``premise → conclusion`` as ``¬premise ∨ conclusion``."""
        return self.or_([self.not_(premise), conclusion])

    # ------------------------------------------------------------------ #
    # Semantic operations
    # ------------------------------------------------------------------ #

    def substitute(self, node: Expr, bindings: Dict[str, Expr]) -> Expr:
        """Replace variables by expressions, rebuilding (and simplifying)."""
        self._check([node])
        self._check(bindings.values())
        cache: Dict[int, Expr] = {}

        order = _topological(node)
        for current in order:
            if current.kind == VAR:
                cache[current.uid] = bindings.get(current.name, current)
            elif current.kind == CONST:
                cache[current.uid] = current
            else:
                rebuilt = [cache[c.uid] for c in current.children]
                if current.kind == AND:
                    cache[current.uid] = self.and_(rebuilt)
                elif current.kind == XOR:
                    cache[current.uid] = self.xor_(rebuilt)
                else:
                    cache[current.uid] = self.or_(rebuilt)
        return cache[node.uid]

    def cofactor(self, node: Expr, name: str, value: bool) -> Expr:
        """The paper's ``b[0/q]`` / ``b[1/q]``: fix one variable."""
        return self.substitute(node, {name: self.const(value)})

    def evaluate(self, node: Expr, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the node's variables."""
        cache: Dict[int, bool] = {}
        for current in _topological(node):
            if current.kind == CONST:
                cache[current.uid] = bool(current.value)
            elif current.kind == VAR:
                if current.name not in assignment:
                    raise BooleanError(f"unassigned variable {current.name!r}")
                cache[current.uid] = bool(assignment[current.name])
            else:
                values = [cache[c.uid] for c in current.children]
                if current.kind == AND:
                    cache[current.uid] = all(values)
                elif current.kind == OR:
                    cache[current.uid] = any(values)
                else:
                    cache[current.uid] = sum(values) % 2 == 1
        return cache[node.uid]

    def variables_of(self, node: Expr) -> FrozenSet[str]:
        """Memoised reachable-variable set."""
        cached = self._variables_cache.get(node.uid)
        if cached is not None:
            return cached
        for current in _topological(node):
            if current.uid in self._variables_cache:
                continue
            if current.kind == VAR:
                result: FrozenSet[str] = frozenset([current.name])
            else:
                result = frozenset().union(
                    *(self._variables_cache[c.uid] for c in current.children)
                )
            self._variables_cache[current.uid] = result
        return self._variables_cache[node.uid]

    # ------------------------------------------------------------------ #
    # Printing
    # ------------------------------------------------------------------ #

    def to_string(self, node: Expr, limit: int = 2000) -> str:
        """Infix rendering, truncated at ``limit`` characters."""
        text = _render(node)
        if len(text) > limit:
            return text[: limit - 3] + "..."
        return text


def _flatten(args: Sequence[Expr], kind: str) -> Iterable[Expr]:
    for arg in args:
        if arg.kind == kind:
            yield from arg.children
        else:
            yield arg


def _topological(root: Expr) -> List[Expr]:
    """Children-before-parents order of the DAG under ``root``."""
    order: List[Expr] = []
    seen: Set[int] = set()
    stack: List[Tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node.uid in seen:
            continue
        seen.add(node.uid)
        stack.append((node, True))
        for child in node.children:
            if child.uid not in seen:
                stack.append((child, False))
    return order


def _render(node: Expr) -> str:
    if node.kind == CONST:
        return "1" if node.value else "0"
    if node.kind == VAR:
        return node.name
    symbol = {AND: "&", XOR: " ^ ", OR: " | "}[node.kind]
    parts = []
    for child in node.children:
        text = _render(child)
        if node.kind == AND and child.kind in (XOR, OR):
            text = f"({text})"
        if node.kind == XOR and child.kind == OR:
            text = f"({text})"
        parts.append(text)
    joiner = symbol if node.kind != AND else symbol
    return joiner.join(parts)
