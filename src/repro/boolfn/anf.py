"""Algebraic normal form (XOR of AND-monomials) for small expressions.

The paper presents tracked formulas in ANF — e.g. Figure 6.1's
``b_a = a ⊕ q1 q2`` — so this module exists for exact expansion of small
DAGs: the Figure 6.1 trace, test oracles, and debugging.  Expansion is
exponential in general, so it is guarded by a monomial budget.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.boolfn.expr import AND, CONST, OR, VAR, XOR, Expr, _topological
from repro.errors import BooleanError

#: A monomial is a frozenset of variable names; the constant 1 is frozenset().
Anf = FrozenSet[FrozenSet[str]]


class AnfOverflowError(BooleanError):
    """Raised when ANF expansion exceeds the monomial budget."""


def _xor(a: Set[FrozenSet[str]], b: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
    return a ^ b


def _and(
    a: Set[FrozenSet[str]], b: Set[FrozenSet[str]], budget: int
) -> Set[FrozenSet[str]]:
    out: Set[FrozenSet[str]] = set()
    for ma in a:
        for mb in b:
            out ^= {ma | mb}
            if len(out) > budget:
                raise AnfOverflowError(
                    f"ANF expansion exceeded {budget} monomials"
                )
    return out


def to_anf(node: Expr, budget: int = 4096) -> Anf:
    """Expand ``node`` to its (canonical) ANF monomial set.

    Raises :class:`AnfOverflowError` if more than ``budget`` monomials
    appear at any point; use only on small formulas.
    """
    cache: Dict[int, Set[FrozenSet[str]]] = {}
    for current in _topological(node):
        if current.kind == CONST:
            cache[current.uid] = {frozenset()} if current.value else set()
        elif current.kind == VAR:
            cache[current.uid] = {frozenset([current.name])}
        elif current.kind == XOR:
            acc: Set[FrozenSet[str]] = set()
            for child in current.children:
                acc = _xor(acc, cache[child.uid])
            cache[current.uid] = acc
        elif current.kind == AND:
            acc = {frozenset()}
            for child in current.children:
                acc = _and(acc, cache[child.uid], budget)
            cache[current.uid] = acc
        elif current.kind == OR:
            # a | b = a ⊕ b ⊕ ab, folded pairwise.
            acc = set()
            for child in current.children:
                rhs = cache[child.uid]
                acc = _xor(_xor(acc, rhs), _and(acc, rhs, budget))
            cache[current.uid] = acc
        if len(cache[current.uid]) > budget:
            raise AnfOverflowError(f"ANF expansion exceeded {budget} monomials")
    return frozenset(cache[node.uid])


def anf_to_string(anf: Anf) -> str:
    """Render an ANF in the paper's style, e.g. ``a ^ q1&q2``.

    Monomials are sorted by degree then lexicographically, so the output
    is deterministic and diff-friendly.
    """
    if not anf:
        return "0"
    monomials: List[str] = []
    for mono in sorted(anf, key=lambda m: (len(m), sorted(m))):
        monomials.append("&".join(sorted(mono)) if mono else "1")
    return " ^ ".join(monomials)


def anf_equal(a: Anf, b: Anf) -> bool:
    """ANF is canonical, so equality of monomial sets is semantic equality."""
    return a == b
