"""Boolean-formula substrate — system S8.

Section 6.1 of the paper tracks, for every qubit ``q``, a Boolean formula
``b_q`` describing the circuit's action on computational-basis states, and
reduces safe uncomputation to unsatisfiability of formulas (6.1) and (6.2).

:mod:`repro.boolfn.expr` provides the hash-consed AND/XOR/OR DAG those
formulas live in (negation is canonicalised to ``x ⊕ 1``), with the
``x ⊕ x = 0`` simplification the paper applies in Figure 6.1.

:mod:`repro.boolfn.cnf` Tseitin-encodes a DAG node into CNF for the SAT
backends; :mod:`repro.boolfn.anf` expands small nodes to algebraic normal
form for pretty-printing and the Figure 6.1 trace;
:mod:`repro.boolfn.bitset` evaluates small cones as vectorised truth
tables — one arbitrary-precision integer per DAG node, ``2**n``
assignments per Python-level op — behind the ``bitset`` checker backend
and the ``brute`` backend's fast path.
"""

from repro.boolfn.expr import Expr, ExprBuilder
from repro.boolfn.cnf import Cnf, TseitinEncoder, tseitin_encode
from repro.boolfn.anf import AnfOverflowError, to_anf, anf_to_string
from repro.boolfn.bitset import (
    bitset_solve,
    count_satisfying,
    truth_table,
    variable_row,
)

__all__ = [
    "AnfOverflowError",
    "Cnf",
    "Expr",
    "ExprBuilder",
    "TseitinEncoder",
    "anf_to_string",
    "bitset_solve",
    "count_satisfying",
    "to_anf",
    "truth_table",
    "tseitin_encode",
    "variable_row",
]
