"""Vectorised truth-table kernels over the hash-consed DAG.

Exhaustive checking used to mean Tseitin-encoding an obligation and
enumerating CNF assignments one Python loop iteration at a time.  For
the small cones the (6.1)/(6.2) obligations actually produce, the whole
truth table fits in one arbitrary-precision integer per DAG node: bit
``i`` of a node's row is the node's value under assignment ``i`` (input
variable ``k`` reads bit ``k`` of ``i``).  One Python-level ``&``/``|``/
``^`` then evaluates the node under all ``2**n`` assignments at once,
so a cone of ``m`` nodes costs ``O(m)`` big-int ops instead of
``O(2**n * clauses)`` interpreter steps.

:func:`bitset_solve` is the satisfiability entry point the ``bitset``
checker backend and the ``brute`` backend's fast path share; the row
builders are exposed for the tests and the ANF/trace tooling.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolfn.expr import AND, CONST, OR, VAR, XOR, Expr, _topological
from repro.errors import BooleanError, SolverError
from repro.sat.result import SatResult, SatStats

#: Widest cone the kernel accepts by default.  2**20 assignments is a
#: 128 KiB row per DAG node — still far cheaper than one CNF
#: enumeration step per assignment — but the memory is per-node, so the
#: cap keeps a pathological cone from allocating gigabytes.
DEFAULT_MAX_VARS = 20


@lru_cache(maxsize=256)
def variable_row(position: int, num_vars: int) -> int:
    """Truth-table row of input variable ``position`` among ``num_vars``.

    Bit ``i`` of the row is ``(i >> position) & 1`` — the variable's
    value under assignment index ``i``.  Built by doubling, so the cost
    is ``O(num_vars)`` big-int shifts, not ``O(2**num_vars)`` loop
    iterations.
    """
    if not 0 <= position < num_vars:
        raise BooleanError(
            f"variable position {position} outside 0..{num_vars - 1}"
        )
    half = 1 << position
    row = ((1 << half) - 1) << half  # one period: 2**position 0s then 1s
    width = half << 1
    total = 1 << num_vars
    while width < total:
        row |= row << width
        width <<= 1
    return row


def truth_table(
    expr: Expr, order: Optional[Sequence[str]] = None
) -> Tuple[int, Tuple[str, ...]]:
    """Evaluate ``expr`` under every assignment of its variables at once.

    Returns ``(table, order)`` where bit ``i`` of ``table`` is the value
    of ``expr`` under the assignment that sets ``order[k]`` to bit ``k``
    of ``i``.  ``order`` defaults to the cone's variables sorted by
    name; passing it explicitly lets two cones share an assignment
    indexing (how (6.1) and (6.2) rows stay comparable in the tests).
    """
    names = tuple(order) if order is not None else tuple(
        sorted(expr.variables())
    )
    missing = expr.variables() - set(names)
    if missing:
        raise BooleanError(f"order omits cone variables {sorted(missing)}")
    n = len(names)
    mask = (1 << (1 << n)) - 1
    position = {name: k for k, name in enumerate(names)}
    rows: Dict[int, int] = {}
    for node in _topological(expr):
        if node.kind == CONST:
            rows[node.uid] = mask if node.value else 0
        elif node.kind == VAR:
            rows[node.uid] = variable_row(position[node.name], n)
        else:
            children = [rows[c.uid] for c in node.children]
            acc = children[0]
            if node.kind == AND:
                for row in children[1:]:
                    acc &= row
            elif node.kind == OR:
                for row in children[1:]:
                    acc |= row
            elif node.kind == XOR:
                for row in children[1:]:
                    acc ^= row
            else:  # pragma: no cover - exhaustive over kinds
                raise BooleanError(f"unknown node kind {node.kind!r}")
            rows[node.uid] = acc
    return rows[expr.uid] & mask, names


def model_from_index(index: int, order: Sequence[str]) -> Dict[str, bool]:
    """Decode assignment index ``index`` back into a name -> value map."""
    return {
        name: bool((index >> position) & 1)
        for position, name in enumerate(order)
    }


def bitset_solve(
    expr: Expr, max_vars: int = DEFAULT_MAX_VARS
) -> Tuple[SatResult, Optional[Dict[str, bool]]]:
    """Decide satisfiability of ``expr`` by one vectorised evaluation.

    Returns the :class:`SatResult` (its ``model`` left empty — variables
    here are names, not DIMACS indices) plus the name-keyed satisfying
    assignment when one exists: the lowest set bit of the truth table,
    so verdicts are deterministic and match enumeration order.
    """
    names = sorted(expr.variables())
    if len(names) > max_vars:
        raise SolverError(
            f"bitset kernel caps at {max_vars} cone variables, "
            f"got {len(names)}"
        )
    table, order = truth_table(expr, names)
    stats = SatStats(decisions=1 << len(names))
    if table == 0:
        return SatResult(False, stats=stats), None
    witness = (table & -table).bit_length() - 1
    return SatResult(True, stats=stats), model_from_index(witness, order)


def count_satisfying(expr: Expr, max_vars: int = DEFAULT_MAX_VARS) -> int:
    """Model count of ``expr`` over its own cone (exact, vectorised)."""
    names = sorted(expr.variables())
    if len(names) > max_vars:
        raise SolverError(
            f"bitset kernel caps at {max_vars} cone variables, "
            f"got {len(names)}"
        )
    table, _ = truth_table(expr, names)
    return table.bit_count()


__all__ = [
    "DEFAULT_MAX_VARS",
    "bitset_solve",
    "count_satisfying",
    "model_from_index",
    "truth_table",
    "variable_row",
]
