"""CNF and the Tseitin transformation.

The satisfiability checks of Theorem 6.4 are run by the SAT backends on a
clausal form.  :class:`TseitinEncoder` assigns a DIMACS-style positive
integer to every DAG node and emits the standard defining clauses; XOR
nodes are chained into binary XORs so a wide parity contributes
``O(width)`` clauses instead of ``2**width``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.boolfn.expr import AND, CONST, OR, VAR, XOR, Expr, _topological
from repro.errors import BooleanError


@dataclass
class Cnf:
    """A CNF instance: ``num_vars`` variables, clauses of non-zero ints.

    Literal ``v`` is the variable, ``-v`` its negation (DIMACS
    convention); variables are numbered from 1.
    """

    num_vars: int = 0
    clauses: List[List[int]] = field(default_factory=list)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: List[int]) -> None:
        for lit in literals:
            if lit == 0 or abs(lit) > self.num_vars:
                raise BooleanError(f"literal {lit} out of range")
        self.clauses.append(list(literals))

    def to_dimacs(self) -> str:
        """Serialise in DIMACS format (handy for debugging)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"


class TseitinEncoder:
    """Incremental Tseitin encoder over one CNF instance.

    Multiple expressions can be encoded into the same instance (sharing
    node variables), which is how the per-qubit checks of formula (6.2)
    reuse the common circuit formulas.
    """

    def __init__(self):
        self.cnf = Cnf()
        self._node_var: Dict[int, int] = {}
        self._var_of_name: Dict[str, int] = {}
        self._aux_vars: Dict[int, Tuple[int, ...]] = {}
        self._true_var: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def literal(self, node: Expr) -> int:
        """Encode ``node`` (and its cone) and return its literal."""
        self._encode_cone(node)
        return self._node_var[node.uid]

    def assert_true(self, node: Expr) -> None:
        """Add the unit clause forcing ``node`` to hold."""
        self.cnf.add_clause([self.literal(node)])

    def variable_map(self) -> Dict[str, int]:
        """Input-variable name -> DIMACS index, for model extraction."""
        return dict(self._var_of_name)

    def cone_vars(self, node: Expr) -> List[int]:
        """DIMACS variables of ``node``'s cone (encoding it on demand).

        Feeds incremental solving: an assumption probe of ``node`` can
        restrict branching to exactly these variables, keeping search
        local to the obligation inside a much larger shared instance.
        """
        self._encode_cone(node)
        cone = set()
        for n in _topological(node):
            cone.add(abs(self._node_var[n.uid]))
            cone.update(self._aux_vars.get(n.uid, ()))
        return sorted(cone)

    def decode_model(self, model: Dict[int, bool]) -> Dict[str, bool]:
        """Project a solver model onto the original input variables."""
        return {
            name: model.get(var, False)
            for name, var in self._var_of_name.items()
        }

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def _true_literal(self) -> int:
        if self._true_var is None:
            self._true_var = self.cnf.new_var()
            self.cnf.add_clause([self._true_var])
        return self._true_var

    def _encode_cone(self, root: Expr) -> None:
        for node in _topological(root):
            if node.uid in self._node_var:
                continue
            if node.kind == CONST:
                t = self._true_literal()
                self._node_var[node.uid] = t if node.value else -t
            elif node.kind == VAR:
                var = self.cnf.new_var()
                self._node_var[node.uid] = var
                self._var_of_name[node.name] = var
            elif node.kind == AND:
                self._node_var[node.uid] = self._encode_and(node)
            elif node.kind == OR:
                self._node_var[node.uid] = self._encode_or(node)
            elif node.kind == XOR:
                self._node_var[node.uid] = self._encode_xor(node)
            else:  # pragma: no cover - exhaustive over kinds
                raise BooleanError(f"unknown node kind {node.kind!r}")

    def _encode_and(self, node: Expr) -> int:
        out = self.cnf.new_var()
        child_lits = [self._node_var[c.uid] for c in node.children]
        for lit in child_lits:
            self.cnf.add_clause([-out, lit])
        self.cnf.add_clause([out] + [-lit for lit in child_lits])
        return out

    def _encode_or(self, node: Expr) -> int:
        out = self.cnf.new_var()
        child_lits = [self._node_var[c.uid] for c in node.children]
        for lit in child_lits:
            self.cnf.add_clause([out, -lit])
        self.cnf.add_clause([-out] + child_lits)
        return out

    def _encode_xor(self, node: Expr) -> int:
        child_lits = [self._node_var[c.uid] for c in node.children]
        acc = child_lits[0]
        ladder = []
        for lit in child_lits[1:]:
            acc = self._binary_xor(acc, lit)
            ladder.append(abs(acc))
        # The ladder's intermediate variables belong to no Expr node but
        # appear in the node's defining clauses; cone_vars must report
        # them or focused solving would leave those clauses asleep.
        if len(ladder) > 1:
            self._aux_vars[node.uid] = tuple(ladder[:-1])
        return acc

    def _binary_xor(self, a: int, b: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_clause([-out, a, b])
        self.cnf.add_clause([-out, -a, -b])
        self.cnf.add_clause([out, -a, b])
        self.cnf.add_clause([out, a, -b])
        return out


def tseitin_encode(node: Expr) -> Tuple[Cnf, Dict[str, int]]:
    """One-shot helper: CNF asserting ``node`` plus the input-variable map."""
    encoder = TseitinEncoder()
    encoder.assert_true(node)
    return encoder.cnf, encoder.variable_map()
