"""ASCII circuit rendering.

Draws circuits in the familiar wire diagram style used by the paper's
figures::

    q1: ──●──────●─────
          │      │
    q2: ──●──────●─────
          │      │
     a: ──X──●───X──●──
             │      │
    q3: ─────●──────●──
             │      │
    q4: ─────X──────X──

Controls render as ``●``, classical targets as ``X``, other gates by a
boxed letter.  Gates are packed greedily into time slots (same rule as
:func:`repro.circuits.metrics.depth`), and vertical connectors span the
full control-to-target range of each gate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuits.circuit import Circuit

_TARGET_SYMBOL = {
    "X": "X",
    "CX": "X",
    "CCX": "X",
    "MCX": "X",
    "CZ": "Z",
}


def _slot_assignment(circuit: Circuit) -> List[List[int]]:
    """Greedy ASAP packing; returns gate indices per time slot."""
    level: Dict[int, int] = {}
    slots: List[List[int]] = []
    for index, gate in enumerate(circuit.gates):
        start = max((level.get(q, 0) for q in gate.qubits), default=0)
        if start >= len(slots):
            slots.append([])
        slots[start].append(index)
        for q in gate.qubits:
            level[q] = start + 1
    return slots


def draw_circuit(circuit: Circuit, max_width: int = 120) -> str:
    """Render the circuit; wraps into banks of ``max_width`` columns."""
    n = circuit.num_qubits
    if n == 0:
        return "(empty register)"
    labels = [circuit.label_of(q) for q in range(n)]
    label_width = max(len(label) for label in labels)

    slots = _slot_assignment(circuit)
    # Build per-slot column blocks: each is (wire_chars, link_chars).
    columns: List[List[str]] = []  # columns[c][row] for 2n-1 rows
    for slot in slots:
        wires = ["─"] * n
        links = [" "] * (n - 1) if n > 1 else []
        for gate_index in slot:
            gate = circuit.gates[gate_index]
            if gate.is_classical or gate.name == "CZ":
                for c in gate.controls:
                    wires[c] = "●"
                wires[gate.target] = _TARGET_SYMBOL.get(gate.name, "X")
            else:
                symbol = gate.name[0].upper()
                for q in gate.qubits:
                    wires[q] = symbol
            lo, hi = min(gate.qubits), max(gate.qubits)
            for row in range(lo, hi):
                links[row] = "│"
            for row in range(lo + 1, hi):
                if row not in gate.qubits and wires[row] == "─":
                    wires[row] = "┼"  # connector crossing an idle wire
        column = []
        for row in range(n):
            column.append(wires[row])
            if row < n - 1:
                column.append(links[row])
        columns.append(column)

    # Assemble with '──' padding between slots, wrapping into banks.
    per_bank = max(1, (max_width - label_width - 4) // 3)
    banks = [
        columns[i : i + per_bank] for i in range(0, len(columns), per_bank)
    ] or [[]]

    lines: List[str] = []
    for bank_index, bank in enumerate(banks):
        if bank_index:
            lines.append("")
        for row in range(2 * n - 1):
            is_wire = row % 2 == 0
            if is_wire:
                prefix = f"{labels[row // 2]:>{label_width}}: ─"
                fill = "─"
            else:
                prefix = " " * (label_width + 3)
                fill = " "
            cells = [column[row] for column in bank]
            lines.append(prefix + (fill * 2).join(cells) + (fill if is_wire else ""))
    return "\n".join(lines)
