"""Per-qubit activity intervals, segmented lending windows and the
restore-point analysis.

Section 3 reuses a working qubit as a dirty ancilla when it is *idle
during the ancilla's period* (the ``<...>`` spans of Figure 3.1).  This
module computes those periods over gate indices — and refines them: an
ancilla shaped ``C;C⁻¹ … C';C'⁻¹`` is *restored* in the gap between its
segments, so the host wire can be released there and re-borrowed later.
:func:`restore_segments` finds those release points and returns the
ancilla's :class:`WindowSet` — the ordered set of disjoint gate-index
segments during which a guest actually occupies its host.

The module has two faces over the same structures:

* **Offline** — :func:`activity_intervals`, :func:`touch_indices` and
  :func:`restore_segments` take a complete :class:`Circuit` and answer
  in one pass.
* **Incremental** — :class:`IncrementalTouchIndex` and
  :class:`RestoreScan` accept gates *one at a time* and keep the same
  answers current after every append: per-wire sorted touch lists grow
  by O(wires-per-gate) (gate indices only ever increase, so every
  insert is a tail append), and the restore-point scan advances its
  greedy left-to-right state machine per touch instead of re-walking
  the gate list.  :func:`restore_segments` is itself implemented by
  replaying a :class:`RestoreScan`, so the offline and streaming
  answers agree by construction — the differential contract the
  streaming allocator (:mod:`repro.alloc.streaming`) is built on.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError


@dataclass(frozen=True)
class ActivityInterval:
    """Closed gate-index interval ``[first, last]`` in which a qubit is used."""

    first: int
    last: int

    def overlaps(self, other: "ActivityInterval") -> bool:
        """True when the two closed intervals intersect."""
        return self.first <= other.last and other.first <= self.last

    def contains_index(self, index: int) -> bool:
        """True when gate ``index`` falls inside the interval."""
        return self.first <= index <= self.last

    def shifted(self, delta: int) -> "ActivityInterval":
        """The same span, ``delta`` gate indices later.

        The multi-programmer uses this to map a guest-local lending
        window onto the machine's composite-interleave timeline: a job
        admitted at logical round ``t`` touches a lent wire exactly
        during ``window.shifted(t)``.
        """
        return ActivityInterval(self.first + delta, self.last + delta)

    @property
    def length(self) -> int:
        """Number of gate indices the interval covers."""
        return self.last - self.first + 1

    def __str__(self) -> str:
        return f"[{self.first}, {self.last}]"


@dataclass(frozen=True)
class WindowSet:
    """An ordered set of disjoint gate-index segments — a lending window.

    The refinement of the single-interval lending window: a guest
    ancilla occupies its host wire only during ``segments``, and the
    gaps between them are valid *release points* (the prefix up to each
    gap provably restores the ancilla, so the host can be handed back
    and re-borrowed later).  A whole-period window is the degenerate
    one-segment case, which is why every host-sharing decision — the
    conflict graph, :func:`~repro.alloc.model.validate_placement`, the
    multi-programmer's leases — now reasons over set disjointness.

    Segments must be sorted, pairwise disjoint and separated by real
    gaps (two contiguous segments are one segment); the constructor
    enforces that, so a ``WindowSet`` is always canonical and equality
    is structural.
    """

    segments: Tuple[ActivityInterval, ...]

    def __post_init__(self):
        segments = tuple(self.segments)
        if not segments:
            raise CircuitError("a WindowSet needs at least one segment")
        for seg in segments:
            if seg.first > seg.last:
                raise CircuitError(f"empty window segment {seg}")
        for prev, nxt in zip(segments, segments[1:]):
            if nxt.first <= prev.last + 1:
                raise CircuitError(
                    f"window segments {prev} and {nxt} are not separated "
                    f"by a gap"
                )
        object.__setattr__(self, "segments", segments)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def whole(cls, interval: ActivityInterval) -> "WindowSet":
        """The one-segment window covering ``interval``."""
        return cls((interval,))

    @classmethod
    def of(cls, *spans: Tuple[int, int]) -> "WindowSet":
        """Build from ``(first, last)`` pairs (test/doc convenience)."""
        return cls(
            tuple(ActivityInterval(first, last) for first, last in spans)
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def first(self) -> int:
        """First gate index covered (start of the earliest segment)."""
        return self.segments[0].first

    @property
    def last(self) -> int:
        """Last gate index covered (end of the latest segment)."""
        return self.segments[-1].last

    @property
    def hull(self) -> ActivityInterval:
        """The whole-period interval the set refines."""
        return ActivityInterval(self.first, self.last)

    @property
    def length(self) -> int:
        """Total covered gate indices (the hull minus the gaps)."""
        return sum(seg.length for seg in self.segments)

    def gaps(self) -> Tuple[ActivityInterval, ...]:
        """The release spans between consecutive segments."""
        return tuple(
            ActivityInterval(prev.last + 1, nxt.first - 1)
            for prev, nxt in zip(self.segments, self.segments[1:])
        )

    def contains_index(self, index: int) -> bool:
        """True when gate ``index`` falls inside some segment."""
        return any(seg.contains_index(index) for seg in self.segments)

    def overlaps(
        self, other: Union["WindowSet", ActivityInterval]
    ) -> bool:
        """True when any segment of ``self`` intersects ``other``.

        Merge-scan over the two sorted segment lists, so the check is
        linear in the segment counts — this sits under the conflict
        graph, ``validate_placement`` and every lease-feasibility test.
        """
        theirs = (
            (other,) if isinstance(other, ActivityInterval) else other.segments
        )
        i = j = 0
        mine = self.segments
        while i < len(mine) and j < len(theirs):
            if mine[i].overlaps(theirs[j]):
                return True
            if mine[i].last < theirs[j].last:
                i += 1
            else:
                j += 1
        return False

    def shifted(self, delta: int) -> "WindowSet":
        """Every segment ``delta`` gate indices later (see
        :meth:`ActivityInterval.shifted`)."""
        return WindowSet(tuple(seg.shifted(delta) for seg in self.segments))

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    def __str__(self) -> str:
        return "∪".join(str(seg) for seg in self.segments)


def activity_intervals(circuit: Circuit) -> Dict[int, ActivityInterval]:
    """Map each touched qubit to its first/last gate index."""
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    for index, gate in enumerate(circuit.gates):
        for q in gate.qubits:
            first.setdefault(q, index)
            last[q] = index
    return {
        q: ActivityInterval(first[q], last[q]) for q in first
    }


def touch_indices(circuit: Circuit) -> Dict[int, List[int]]:
    """Map each touched qubit to its sorted gate-index list.

    One pass over the gates; the per-qubit lists are ascending by
    construction, so idle queries and the restore-point analysis can
    binary-search them instead of re-walking the gate list.
    """
    touches: Dict[int, List[int]] = {}
    for index, gate in enumerate(circuit.gates):
        for q in gate.qubits:
            touches.setdefault(q, []).append(index)
    return touches


class IncrementalTouchIndex:
    """Per-wire sorted touch lists over a *growing* gate stream.

    The streaming counterpart of :func:`touch_indices` /
    :func:`activity_intervals`: gates arrive one at a time through
    :meth:`append`, and because gate indices only ever increase, every
    per-wire insert is a tail append — the lists stay sorted with no
    ``insort`` shifting and no rescans.  Idle queries
    (:meth:`busy_in`) are the same per-segment :func:`bisect_left`
    probes the offline candidate scan uses, so a model maintained on
    top of this index answers exactly like one built from the finished
    circuit.
    """

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        self._touches: List[List[int]] = [[] for _ in range(num_qubits)]
        self._num_gates = 0

    @property
    def num_gates(self) -> int:
        """Gates appended so far (the next gate gets this index)."""
        return self._num_gates

    def append(self, gate) -> int:
        """Record one gate; returns the gate index it was assigned."""
        index = self._num_gates
        for q in gate.qubits:
            self._touches[q].append(index)
        self._num_gates += 1
        return index

    def touches_of(self, qubit: int) -> Sequence[int]:
        """The wire's ascending gate-index list (live view)."""
        return self._touches[qubit]

    def interval(self, qubit: int) -> Optional[ActivityInterval]:
        """The wire's activity interval so far, or ``None`` if untouched."""
        indices = self._touches[qubit]
        if not indices:
            return None
        return ActivityInterval(indices[0], indices[-1])

    def last_touch(self, qubit: int) -> Optional[int]:
        """Index of the wire's most recent gate, or ``None``."""
        indices = self._touches[qubit]
        return indices[-1] if indices else None

    def busy_in(
        self, qubit: int, window: Union[ActivityInterval, WindowSet]
    ) -> bool:
        """Does the wire have a gate inside ``window``'s segments?"""
        indices = self._touches[qubit]
        if not indices:
            return False
        segments = (
            window.segments if isinstance(window, WindowSet) else (window,)
        )
        return _busy_inside(indices, segments)


def idle_qubits_during(
    circuit: Circuit,
    window: Union[ActivityInterval, WindowSet],
    candidates: Optional[Set[int]] = None,
) -> Set[int]:
    """Qubits with no gate inside ``window``.

    ``candidates`` restricts the search (e.g. to working qubits only);
    by default all register qubits are considered.  A qubit that is never
    touched at all is idle in every window.  ``window`` may be a
    :class:`WindowSet`, in which case only its segments matter — a qubit
    busy purely inside the gaps is still idle.

    One pass builds the per-qubit touch lists; each (qubit, segment)
    query is then a single :func:`bisect_left`, so the whole call is
    ``O(gates + |pool| * segments * log gates)`` instead of the old
    per-candidate rescan of every gate in the window.
    """
    pool = set(range(circuit.num_qubits)) if candidates is None else set(candidates)
    touches = touch_indices(circuit)
    segments = (
        window.segments if isinstance(window, WindowSet) else (window,)
    )
    idle: Set[int] = set()
    for q in pool:
        indices = touches.get(q)
        if not indices or not _busy_inside(indices, segments):
            idle.add(q)
    return idle


def _busy_inside(
    indices: Sequence[int], segments: Sequence[ActivityInterval]
) -> bool:
    """Does the sorted touch list hit any of the segments?"""
    for seg in segments:
        cut = bisect_left(indices, seg.first)
        if cut < len(indices) and indices[cut] <= seg.last:
            return True
    return False


# --------------------------------------------------------------------- #
# Restore-point analysis
# --------------------------------------------------------------------- #

#: Decides whether a candidate segment (a contiguous gate slice, given
#: as its own circuit) provably restores the ancilla for every input
#: and every initial ancilla value — the per-segment Definition 3.1
#: obligation.  Used for slices the structural detector cannot certify.
SegmentCheck = Callable[[Circuit, int], bool]


def _structural_identity(gates: Sequence) -> bool:
    """True when the slice is a ``C;C⁻¹``-shaped classical palindrome.

    Classical gates (X / CX / CCX / MCX) are self-inverse, so a
    palindromic slice of them composes to the identity *operator* —
    regardless of what the surrounding circuit does to the data wires.
    This is exactly the shape :func:`repro.testing.random_reversible_circuit`
    constructively emits, and it is decidable in one linear scan.
    """
    n = len(gates)
    if n == 0 or n % 2:
        return False
    return all(
        gates[i].is_classical and gates[i] == gates[n - 1 - i]
        for i in range(n // 2)
    )


class RestoreScan:
    """Streaming restore-point analysis for one ancilla.

    Holds the greedy left-to-right scan of :func:`restore_segments` as
    live state over a *growing* gate list: feed every touch of the
    ancilla (in order) through :meth:`observe`, and :meth:`window`
    returns, at any prefix, exactly the :class:`WindowSet` that
    :func:`restore_segments` would compute on that prefix — including
    the all-or-nothing tail rule.  :func:`restore_segments` is in fact
    implemented by replaying one of these, so the two can never drift.

    ``gates`` is a live reference to the growing gate list (e.g.
    ``circuit.gates``); certification slices are read from it on
    demand and the verdicts cached per ``(first, last)`` span, so
    repeated :meth:`window` calls between touches cost nothing new.
    """

    def __init__(
        self,
        num_qubits: int,
        gates: Sequence,
        ancilla: int,
        segment_check: Optional[SegmentCheck] = None,
    ):
        self._num_qubits = num_qubits
        self._gates = gates
        self._ancilla = ancilla
        self._segment_check = segment_check
        self._closed: List[ActivityInterval] = []
        self._first: Optional[int] = None
        self._seg_start: Optional[int] = None
        self._prev: Optional[int] = None
        self._certified: Dict[Tuple[int, int], bool] = {}

    @property
    def touched(self) -> bool:
        """Has the ancilla been observed at all yet?"""
        return self._prev is not None

    @property
    def last_touch(self) -> Optional[int]:
        """Most recent observed touch index, or ``None``."""
        return self._prev

    def observe(self, index: int) -> None:
        """Advance the scan past the ancilla's touch at ``index``.

        Touches must arrive in ascending order (a repeated index is
        tolerated as a no-op, matching the offline scan).  A gap before
        ``index`` becomes a release point iff the open slice certifies,
        exactly as in :func:`restore_segments`.
        """
        if self._prev is None:
            self._first = self._seg_start = self._prev = index
            return
        if index == self._prev:
            return
        if index < self._prev:
            raise CircuitError(
                f"restore scan for ancilla {self._ancilla} fed touch "
                f"{index} after {self._prev}; touches must ascend"
            )
        if index > self._prev + 1 and self._certifies(
            self._seg_start, self._prev
        ):
            self._closed.append(ActivityInterval(self._seg_start, self._prev))
            self._seg_start = index
        self._prev = index

    def window(self) -> WindowSet:
        """The prefix's lending window — same answer, same tail rule,
        as :func:`restore_segments` on the gates seen so far."""
        if self._prev is None:
            raise CircuitError(
                f"ancilla {self._ancilla} is never touched; "
                f"no window to segment"
            )
        whole = WindowSet.whole(ActivityInterval(self._first, self._prev))
        if not self._closed:
            return whole
        if not self._certifies(self._seg_start, self._prev):
            # Tail does not certify: withdraw the decomposition (see
            # restore_segments — an uncertified tail is not proven to
            # restore a re-acquired value).
            return whole
        return WindowSet(
            (*self._closed, ActivityInterval(self._seg_start, self._prev))
        )

    def _certifies(self, first: int, last: int) -> bool:
        key = (first, last)
        cached = self._certified.get(key)
        if cached is None:
            gates = list(self._gates[first : last + 1])
            cached = _structural_identity(gates)
            if not cached and self._segment_check is not None:
                cached = self._segment_check(
                    Circuit(self._num_qubits, gates), self._ancilla
                )
            self._certified[key] = cached
        return cached


def restore_segments(
    circuit: Circuit,
    ancilla: int,
    segment_check: Optional[SegmentCheck] = None,
    touches: Optional[Sequence[int]] = None,
) -> WindowSet:
    """Split an ancilla's activity period at its valid release points.

    A gap in the ancilla's touch pattern is a valid release point only
    when the activity on each side forms a self-contained *identity
    segment*: the contiguous gate slice from the segment's first touch
    to its last must restore the ancilla for every input and every
    initial ancilla value.  Only then can the host wire be handed back
    in the gap (the borrowed value is intact) and re-borrowed at the
    next segment (which restores whatever value it then finds).

    Segments are certified structurally — a palindrome of self-inverse
    classical gates composes to the identity — with ``segment_check``
    (see :func:`solver_restore_checker`) as the optional semantic
    fallback for slices the syntax cannot decide.  The split is greedy:
    scanning left to right, a gap becomes a release point as soon as
    the slice since the previous release point certifies, and a slice
    that does not certify is merged across the gap and retried at the
    next one — so every *emitted* segment is a certified identity,
    even when it spans several touch-gaps.  If the trailing slice
    never certifies, the whole decomposition is withdrawn and the
    ancilla keeps its whole activity period as a single window:
    releasing at any earlier point would let the host's owner change
    the wire during a gap, and an uncertified tail is not proven to
    restore that new value (in particular, a ``spoiled`` ancilla —
    whose trailing flip can never certify — is never segmented).
    Raises :class:`CircuitError` for an untouched ancilla.

    ``touches`` optionally supplies the ancilla's sorted gate-index
    list (one entry of :func:`touch_indices`), sparing callers that
    already scanned the gate list — :func:`repro.alloc.build_model`
    analyses every ancilla off a single pass.
    """
    if not 0 <= ancilla < circuit.num_qubits:
        raise CircuitError(f"ancilla {ancilla} outside the register")
    if touches is None:
        touches = touch_indices(circuit).get(ancilla, ())
    if not touches:
        raise CircuitError(
            f"ancilla {ancilla} is never touched; no window to segment"
        )
    # Replay the streaming scan over the known touch list: one state
    # machine implements both the offline and the incremental analysis,
    # so the two answers agree by construction.
    scan = RestoreScan(
        circuit.num_qubits, circuit.gates, ancilla, segment_check
    )
    for t in touches:
        scan.observe(t)
    return scan.window()


def solver_restore_checker(
    verifier=None, backend: str = "bdd"
) -> SegmentCheck:
    """A :data:`SegmentCheck` backed by the Section 6 obligations.

    Wraps a :class:`~repro.verify.batch.BatchVerifier` (a private
    memoising one by default): a candidate segment certifies when the
    slice, taken as a circuit of its own, verifies the ancilla
    dirty-safe — restored for every input and every initial ancilla
    value, with no leak into other wires — which is exactly the
    per-segment restore obligation.  Slices outside the classical
    fragment never certify (same boundary as the pipeline itself).
    """
    if verifier is None:
        from repro.verify.batch import BatchVerifier

        verifier = BatchVerifier(backend=backend)

    def check(segment_circuit: Circuit, ancilla: int) -> bool:
        from repro.circuits.classical import is_classical_circuit

        if not is_classical_circuit(segment_circuit):
            return False
        report = verifier.verify_circuit(segment_circuit, [ancilla])
        return all(v.safe for v in report.verdicts)

    return check
