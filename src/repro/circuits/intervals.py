"""Per-qubit activity intervals and idle-window queries.

Section 3 reuses a working qubit as a dirty ancilla when it is *idle
during the ancilla's period* (the ``<...>`` spans of Figure 3.1).  This
module computes those periods over gate indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.circuits.circuit import Circuit


@dataclass(frozen=True)
class ActivityInterval:
    """Closed gate-index interval ``[first, last]`` in which a qubit is used."""

    first: int
    last: int

    def overlaps(self, other: "ActivityInterval") -> bool:
        """True when the two closed intervals intersect."""
        return self.first <= other.last and other.first <= self.last

    def contains_index(self, index: int) -> bool:
        """True when gate ``index`` falls inside the interval."""
        return self.first <= index <= self.last

    def shifted(self, delta: int) -> "ActivityInterval":
        """The same span, ``delta`` gate indices later.

        The multi-programmer uses this to map a guest-local lending
        window onto the machine's composite-interleave timeline: a job
        admitted at logical round ``t`` touches a lent wire exactly
        during ``window.shifted(t)``.
        """
        return ActivityInterval(self.first + delta, self.last + delta)

    def __str__(self) -> str:
        return f"[{self.first}, {self.last}]"


def activity_intervals(circuit: Circuit) -> Dict[int, ActivityInterval]:
    """Map each touched qubit to its first/last gate index."""
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    for index, gate in enumerate(circuit.gates):
        for q in gate.qubits:
            first.setdefault(q, index)
            last[q] = index
    return {
        q: ActivityInterval(first[q], last[q]) for q in first
    }


def idle_qubits_during(
    circuit: Circuit,
    window: ActivityInterval,
    candidates: Optional[Set[int]] = None,
) -> Set[int]:
    """Qubits with no gate inside ``window``.

    ``candidates`` restricts the search (e.g. to working qubits only);
    by default all register qubits are considered.  A qubit that is never
    touched at all is idle in every window.
    """
    pool = set(range(circuit.num_qubits)) if candidates is None else set(candidates)
    intervals = activity_intervals(circuit)
    idle: Set[int] = set()
    for q in pool:
        interval = intervals.get(q)
        if interval is None or not _busy_inside(circuit, q, window):
            idle.add(q)
    return idle


def _busy_inside(circuit: Circuit, qubit: int, window: ActivityInterval) -> bool:
    for index in range(window.first, min(window.last, len(circuit.gates) - 1) + 1):
        if qubit in circuit.gates[index].qubits:
            return True
    return False
