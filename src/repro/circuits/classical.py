"""Classical permutation simulation of X / multi-controlled-NOT circuits.

Circuits "implementing a classical function" (Theorem 6.2's fragment)
permute computational-basis states, so they can be executed on bitstrings
directly.  Two simulators are provided:

* :func:`apply_to_bits` — one input at a time, cost ``O(gates)`` per input,
  works for thousands of qubits (used for counterexample replay and
  large-scale functional tests of the adder / MCX libraries);
* :func:`truth_table` — all ``2**n`` inputs at once, vectorised over numpy
  integer arrays (used as the brute-force verification oracle for small n).

Bit convention: qubit 0 is the most significant bit, matching
:mod:`repro.linalg`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import VerificationError


def is_classical_circuit(circuit: Circuit) -> bool:
    """True when every gate is X or a multi-controlled NOT."""
    return all(gate.is_classical for gate in circuit.gates)


def _require_classical(circuit: Circuit) -> None:
    for gate in circuit.gates:
        if not gate.is_classical:
            raise VerificationError(
                f"gate {gate} is not classical; Theorem 6.2 does not apply"
            )


def apply_to_bits(circuit: Circuit, bits: Sequence[int]) -> List[int]:
    """Run the circuit on one classical input, returning the output bits."""
    _require_classical(circuit)
    if len(bits) != circuit.num_qubits:
        raise VerificationError(
            f"{len(bits)} input bits for a {circuit.num_qubits}-qubit circuit"
        )
    state = [int(b) for b in bits]
    for b in state:
        if b not in (0, 1):
            raise VerificationError(f"input bit {b!r} is not 0 or 1")
    for gate in circuit.gates:
        if all(state[c] for c in gate.controls):
            state[gate.target] ^= 1
    return state


def truth_table(circuit: Circuit) -> np.ndarray:
    """Return ``f`` as an array: ``f[x]`` is the output index for input ``x``.

    Vectorised over all ``2**n`` basis states; capped at 22 qubits to keep
    memory bounded.
    """
    _require_classical(circuit)
    n = circuit.num_qubits
    if n > 22:
        raise VerificationError(
            f"truth-table simulation caps at 22 qubits; circuit has {n}"
        )
    states = np.arange(2**n, dtype=np.int64)
    for gate in circuit.gates:
        mask = np.ones(2**n, dtype=bool)
        for c in gate.controls:
            bit = 1 << (n - 1 - c)
            mask &= (states & bit) != 0
        target_bit = 1 << (n - 1 - gate.target)
        states = np.where(mask, states ^ target_bit, states)
    return states


def permutation_of(circuit: Circuit) -> np.ndarray:
    """Alias of :func:`truth_table`, named for the permutation-matrix view:
    the circuit's unitary satisfies ``U |x> = |f(x)>``."""
    return truth_table(circuit)
