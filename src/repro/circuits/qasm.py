"""OpenQASM 2.0 interchange for the circuit IR.

Lets circuits produced here (benchmark adders, MCX constructions,
borrow-pass outputs) be inspected in, or imported from, mainstream
toolchains.  The exporter emits plain OpenQASM 2.0; multi-controlled
NOTs and parametric phases use the standard library spellings
(``ccx``, ``cp``, ...), with wide MCX gates decomposed on export via the
dirty-chain construction (borrowing idle wires) or flagged if no wires
are available.

The importer accepts the subset this repository emits — one quantum
register, the gate set below — which is enough for round-tripping and
for pulling in externally-authored classical circuits to verify.
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

from repro.circuits.circuit import Circuit
from repro.circuits.gates import (
    Gate,
    cnot,
    cphase,
    hadamard,
    phase,
    s_gate,
    swap,
    t_gate,
    toffoli,
    x,
)
from repro.errors import CircuitError

_EXPORT_NAMES = {
    "X": "x",
    "Y": "y",
    "Z": "z",
    "H": "h",
    "S": "s",
    "SDG": "sdg",
    "T": "t",
    "TDG": "tdg",
    "CX": "cx",
    "CZ": "cz",
    "SWAP": "swap",
    "CCX": "ccx",
}


def to_qasm(circuit: Circuit) -> str:
    """Serialise to OpenQASM 2.0.

    MCX gates with more than two controls are rejected (decompose them
    first, e.g. with :func:`repro.mcx.mcx_dirty_chain`); gates with
    custom matrices have no portable spelling and are rejected too.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit.gates:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    operands = ",".join(f"q[{w}]" for w in gate.qubits)
    if gate.name in _EXPORT_NAMES:
        return f"{_EXPORT_NAMES[gate.name]} {operands};"
    if gate.name == "PHASE":
        return f"p({gate.params[0]!r}) {operands};"
    if gate.name == "CPHASE":
        return f"cp({gate.params[0]!r}) {operands};"
    if gate.name == "RZ":
        return f"rz({gate.params[0]!r}) {operands};"
    if gate.name == "MCX":
        raise CircuitError(
            f"gate {gate} has no OpenQASM 2 spelling; decompose wide MCX "
            f"gates before export"
        )
    raise CircuitError(f"gate {gate.name} is not exportable")


_QASM_GATES = {
    "x": (1, lambda args, p: x(args[0])),
    "h": (1, lambda args, p: hadamard(args[0])),
    "s": (1, lambda args, p: s_gate(args[0])),
    "sdg": (1, lambda args, p: Gate("SDG", (args[0],))),
    "t": (1, lambda args, p: t_gate(args[0])),
    "tdg": (1, lambda args, p: Gate("TDG", (args[0],))),
    "y": (1, lambda args, p: Gate("Y", (args[0],))),
    "z": (1, lambda args, p: Gate("Z", (args[0],))),
    "cx": (2, lambda args, p: cnot(args[0], args[1])),
    "cz": (2, lambda args, p: Gate("CZ", tuple(args))),
    "swap": (2, lambda args, p: swap(args[0], args[1])),
    "ccx": (3, lambda args, p: toffoli(args[0], args[1], args[2])),
    "p": (1, lambda args, p: phase(p, args[0])),
    "u1": (1, lambda args, p: phase(p, args[0])),
    "cp": (2, lambda args, p: cphase(p, args[0], args[1])),
    "rz": (1, lambda args, p: Gate("RZ", (args[0],), (p,))),
}

_STATEMENT = re.compile(
    r"^\s*(?P<name>[a-z_][a-z0-9_]*)\s*"
    r"(?:\(\s*(?P<param>[^)]*)\s*\))?\s+"
    r"(?P<operands>[^;]+);\s*$"
)
_OPERAND = re.compile(r"^q\[(\d+)\]$")


class QasmStream:
    """Iterate the gates of an OpenQASM 2.0 program as lines are read.

    Each drawn gate has been parsed, validated and appended to
    :attr:`circuit` before it is yielded, so a consumer (e.g. a
    :class:`~repro.alloc.streaming.StreamingAllocator`) can act on it
    while the rest of the file is still unread.  :attr:`num_qubits`
    becomes available once the ``qreg`` header line has been consumed.
    All :class:`~repro.errors.CircuitError`\\ s of :func:`from_qasm`
    surface unchanged, at the line that causes them — including ``no
    qreg declaration found``, raised when the stream ends without a
    header.
    """

    def __init__(self, text: str):
        self.circuit: Optional[Circuit] = None
        self._gates = self._parse(text)

    @property
    def num_qubits(self) -> Optional[int]:
        """Declared register width, or ``None`` before the ``qreg``."""
        return None if self.circuit is None else self.circuit.num_qubits

    def __iter__(self) -> "QasmStream":
        return self

    def __next__(self) -> Gate:
        return next(self._gates)

    def _parse(self, text: str):
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("//")[0].strip()
            if not line:
                continue
            if line.startswith("OPENQASM") or line.startswith("include"):
                continue
            if line.startswith("qreg"):
                match = re.match(r"^qreg\s+q\[(\d+)\]\s*;$", line)
                if not match:
                    raise CircuitError(
                        f"line {line_number}: unsupported qreg declaration"
                    )
                if self.circuit is not None:
                    raise CircuitError("multiple qreg declarations")
                self.circuit = Circuit(int(match.group(1)))
                continue
            if line.startswith("creg") or line.startswith("barrier"):
                continue
            match = _STATEMENT.match(line)
            if not match:
                raise CircuitError(
                    f"line {line_number}: cannot parse {line!r}"
                )
            if self.circuit is None:
                raise CircuitError("gate before qreg declaration")
            name = match.group("name")
            if name not in _QASM_GATES:
                raise CircuitError(
                    f"line {line_number}: unsupported gate {name!r}"
                )
            arity, build = _QASM_GATES[name]
            operands: List[int] = []
            for token in match.group("operands").split(","):
                op_match = _OPERAND.match(token.strip())
                if not op_match:
                    raise CircuitError(
                        f"line {line_number}: bad operand {token.strip()!r}"
                    )
                operands.append(int(op_match.group(1)))
            if len(operands) != arity:
                raise CircuitError(
                    f"line {line_number}: {name} expects {arity} operands"
                )
            param = None
            if match.group("param") is not None:
                param = _eval_param(match.group("param"), line_number)
            gate = build(operands, param)
            self.circuit.append(gate)
            yield gate
        if self.circuit is None:
            raise CircuitError("no qreg declaration found")


def iter_qasm_gates(text: str) -> QasmStream:
    """Stream an OpenQASM 2.0 program's gates as lines are consumed.

    Returns a :class:`QasmStream`; ``list(iter_qasm_gates(text))``
    equals ``from_qasm(text).gates`` gate for gate.
    """
    return QasmStream(text)


def from_qasm(text: str) -> Circuit:
    """Parse the OpenQASM 2.0 subset emitted by :func:`to_qasm`.

    Drains :func:`iter_qasm_gates`, so the offline and streaming import
    paths are a single code path and cannot drift.
    """
    stream = QasmStream(text)
    for _ in stream:
        pass
    return stream.circuit


def _eval_param(text: str, line_number: int) -> float:
    """Evaluate a parameter expression: floats, pi, + - * /."""
    allowed = re.compile(r"^[0-9eE().+\-*/ ]|pi$")
    cleaned = text.replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE().+\-*/ ]*", cleaned):
        raise CircuitError(f"line {line_number}: bad parameter {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {}))
    except Exception:
        raise CircuitError(
            f"line {line_number}: cannot evaluate parameter {text!r}"
        ) from None
