"""Quantum-circuit intermediate representation — system S3.

Circuits are flat gate lists over integer-indexed qubits.  The IR supports
the two execution models the paper needs:

* **unitary extraction** (:mod:`repro.circuits.unitary`) for small registers,
  used by the semantic checkers of Section 5; and
* **classical permutation simulation** (:mod:`repro.circuits.classical`) for
  circuits built from X and multi-controlled-NOT gates — the fragment in
  which Section 6 verifies safe uncomputation at scale.

:mod:`repro.circuits.intervals` computes per-qubit activity periods and
their refinement into segmented lending windows: the restore-point
analysis (:func:`restore_segments`) splits an ancilla's period at the
gaps where the prefix provably restores it, yielding the
:class:`WindowSet` of disjoint segments a borrowed host is actually
occupied for; :class:`IncrementalTouchIndex` and :class:`RestoreScan`
run the same analyses gate-by-gate over a growing stream (the offline
functions replay them, so the two can never drift).  The Figure 3.1
width-reduction pass that borrows idle
working qubits as dirty ancillas lives in :mod:`repro.alloc` (a
pluggable strategy subsystem), with :mod:`repro.circuits.borrowing` as
its historical façade.
"""

from repro.circuits.gates import (
    Gate,
    ccnot,
    cnot,
    cphase,
    gate_from_name,
    hadamard,
    mcx,
    phase,
    s_gate,
    swap,
    t_gate,
    toffoli,
    unitary_gate,
    x,
)
from repro.circuits.circuit import Circuit
from repro.circuits.classical import (
    apply_to_bits,
    is_classical_circuit,
    permutation_of,
    truth_table,
)
from repro.circuits.intervals import (
    ActivityInterval,
    IncrementalTouchIndex,
    RestoreScan,
    WindowSet,
    activity_intervals,
    idle_qubits_during,
    restore_segments,
    solver_restore_checker,
    touch_indices,
)
from repro.circuits.metrics import CircuitCosts, circuit_costs, depth, size
from repro.circuits.unitary import circuit_unitary
from repro.circuits.statevector import (
    apply_gate_to_ket,
    run_on_basis_state,
    run_statevector,
)
from repro.circuits.draw import draw_circuit
from repro.circuits.qasm import (
    QasmStream,
    from_qasm,
    iter_qasm_gates,
    to_qasm,
)
from repro.circuits.borrowing import BorrowPlan, borrow_dirty_qubits

__all__ = [
    "ActivityInterval",
    "BorrowPlan",
    "WindowSet",
    "Circuit",
    "CircuitCosts",
    "Gate",
    "IncrementalTouchIndex",
    "RestoreScan",
    "activity_intervals",
    "apply_gate_to_ket",
    "apply_to_bits",
    "borrow_dirty_qubits",
    "ccnot",
    "circuit_costs",
    "circuit_unitary",
    "cnot",
    "cphase",
    "depth",
    "draw_circuit",
    "QasmStream",
    "from_qasm",
    "iter_qasm_gates",
    "gate_from_name",
    "hadamard",
    "idle_qubits_during",
    "restore_segments",
    "solver_restore_checker",
    "touch_indices",
    "is_classical_circuit",
    "mcx",
    "permutation_of",
    "phase",
    "run_on_basis_state",
    "run_statevector",
    "s_gate",
    "size",
    "swap",
    "t_gate",
    "to_qasm",
    "toffoli",
    "truth_table",
    "unitary_gate",
    "x",
]
