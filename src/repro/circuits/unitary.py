"""Dense unitary extraction for small circuits.

Used by the semantic safe-uncomputation checkers (Definition 3.1,
Theorems 5.3/6.1) on registers of up to ~12 qubits.  Larger classical
circuits go through :mod:`repro.circuits.classical` instead.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError
from repro.linalg.kron import embed_operator, identity


_MAX_DENSE_QUBITS = 14


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Multiply out the circuit into a ``2**n`` dimensional unitary."""
    n = circuit.num_qubits
    if n > _MAX_DENSE_QUBITS:
        raise CircuitError(
            f"dense unitary extraction caps at {_MAX_DENSE_QUBITS} qubits; "
            f"circuit has {n}"
        )
    result = identity(n)
    for gate in circuit.gates:
        full = embed_operator(gate.local_matrix(), gate.qubits, n)
        result = full @ result
    return result
