"""Statevector simulation: apply gates directly to kets.

``circuit_unitary`` materialises a ``4**n``-entry matrix, which caps it
near 12 qubits.  Applying each gate to the state tensor instead costs
``O(2**n)`` per gate and reaches ~20 qubits — enough to cross-validate
the unitary and classical simulators on mid-sized circuits and to
*demonstrate* safe-uncomputation violations on actual quantum states
(see :mod:`repro.verify.demonstrate`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.errors import CircuitError, QubitError

_MAX_QUBITS = 22


def apply_gate_to_ket(
    ket: np.ndarray, gate: Gate, num_qubits: int
) -> np.ndarray:
    """Apply one gate to a ket of ``num_qubits`` qubits (out of place)."""
    dim = 2**num_qubits
    ket = np.asarray(ket, dtype=complex)
    if ket.shape != (dim,):
        raise QubitError(
            f"ket of shape {ket.shape} is not on {num_qubits} qubits"
        )
    k = len(gate.qubits)
    tensor = ket.reshape([2] * num_qubits)
    # Move the gate's wires to the front, contract, move back.
    front = list(gate.qubits)
    rest = [q for q in range(num_qubits) if q not in gate.qubits]
    perm = front + rest
    moved = tensor.transpose(perm).reshape(2**k, -1)
    moved = gate.local_matrix() @ moved
    moved = moved.reshape([2] * num_qubits)
    inverse = [0] * num_qubits
    for position, axis in enumerate(perm):
        inverse[axis] = position
    return moved.transpose(inverse).reshape(dim)


def run_statevector(
    circuit: Circuit, initial: Optional[Sequence[complex]] = None
) -> np.ndarray:
    """Run the circuit on a ket (default ``|0...0>``), returning the
    final statevector."""
    n = circuit.num_qubits
    if n > _MAX_QUBITS:
        raise CircuitError(
            f"statevector simulation caps at {_MAX_QUBITS} qubits; "
            f"circuit has {n}"
        )
    if initial is None:
        state = np.zeros(2**n, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=complex)
        if state.shape != (2**n,):
            raise QubitError(
                f"initial ket of shape {state.shape} is not on {n} qubits"
            )
        norm = np.linalg.norm(state)
        if abs(norm - 1.0) > 1e-6:
            raise QubitError("initial ket is not normalised")
        state = state.copy()
    for gate in circuit.gates:
        state = apply_gate_to_ket(state, gate, n)
    return state


def run_on_basis_state(circuit: Circuit, index: int) -> np.ndarray:
    """Run the circuit starting from the computational-basis ket
    ``|index>``."""
    n = circuit.num_qubits
    state = np.zeros(2**n, dtype=complex)
    if not 0 <= index < 2**n:
        raise QubitError(f"basis index {index} out of range for {n} qubits")
    state[index] = 1.0
    return run_statevector(circuit, state)
