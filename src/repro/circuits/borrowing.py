"""The Figure 3.1 width-reduction pass: borrow idle qubits as dirty ancillas.

Given a circuit over working qubits plus designated *dirty ancilla* wires,
the pass computes each ancilla's activity period, finds a working qubit (or
an already-freed host) that is idle throughout that period, and remaps the
ancilla onto it.  Because the host's initial state is arbitrary, this
rewrite is only sound when each ancilla is *safely uncomputed* in the sense
of Definition 3.1 — callers supply a ``safety_check`` (typically one of the
verifiers in :mod:`repro.verify`) to enforce that; the pass itself is
purely structural.

The result of the pass on the paper's running example (two CCCNOT routines
sharing ``q3``) reproduces Figures 3.1b/3.1c: width drops from 7 to 5 with
no ancilla wires left.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.intervals import (
    ActivityInterval,
    activity_intervals,
    idle_qubits_during,
)
from repro.errors import CircuitError

SafetyCheck = Callable[[Circuit, int], bool]


@dataclass
class BorrowPlan:
    """Outcome of :func:`borrow_dirty_qubits`.

    Attributes
    ----------
    circuit:
        The rewritten circuit on the compacted register.
    assignment:
        Original ancilla index -> original host qubit index.
    unplaced:
        Ancillas for which no idle host existed (kept as real wires).
    periods:
        The activity period used for each ancilla.
    wire_map:
        Original qubit index -> new index, for every surviving wire.
    original_width / final_width:
        Register widths before and after the pass.
    """

    circuit: Circuit
    assignment: Dict[int, int]
    unplaced: List[int]
    periods: Dict[int, ActivityInterval]
    wire_map: Dict[int, int]
    original_width: int
    final_width: int
    notes: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [
            f"width {self.original_width} -> {self.final_width}",
            f"borrowed: "
            + ", ".join(f"a{a}->q{h}" for a, h in sorted(self.assignment.items())),
        ]
        if self.unplaced:
            lines.append(f"unplaced ancillas: {sorted(self.unplaced)}")
        return "\n".join(lines)


def borrow_dirty_qubits(
    circuit: Circuit,
    ancillas: Sequence[int],
    safety_check: Optional[SafetyCheck] = None,
    on_unsafe: str = "error",
) -> BorrowPlan:
    """Eliminate dirty-ancilla wires by borrowing idle qubits.

    Parameters
    ----------
    circuit:
        The input circuit; ``ancillas`` are wire indices to eliminate.
    safety_check:
        Optional predicate ``(circuit, ancilla) -> bool`` deciding safe
        uncomputation (Definition 3.1).  Unsafe ancillas are handled per
        ``on_unsafe``.
    on_unsafe:
        ``"error"`` raises :class:`CircuitError`; ``"skip"`` leaves the
        ancilla as a real wire and records a note.

    Ancillas are processed in order of period start; a host is any
    non-ancilla qubit idle during the period and not already hosting an
    overlapping guest.  Hosts that freed up are reused, which is what lets
    ``q3`` serve both ``a1`` and ``a2`` in Figure 3.1.
    """
    ancilla_set = set(ancillas)
    for a in ancilla_set:
        if not 0 <= a < circuit.num_qubits:
            raise CircuitError(f"ancilla {a} outside the register")
    if on_unsafe not in ("error", "skip"):
        raise CircuitError(f"on_unsafe must be 'error' or 'skip', got {on_unsafe!r}")

    intervals = activity_intervals(circuit)
    notes: List[str] = []

    untouched = [a for a in sorted(ancilla_set) if a not in intervals]
    active = [a for a in sorted(ancilla_set) if a in intervals]
    active.sort(key=lambda a: intervals[a].first)

    working = set(range(circuit.num_qubits)) - ancilla_set
    guest_periods: Dict[int, List[ActivityInterval]] = {}
    assignment: Dict[int, int] = {}
    unplaced: List[int] = []

    for a in active:
        period = intervals[a]
        if safety_check is not None and not safety_check(circuit, a):
            if on_unsafe == "error":
                raise CircuitError(
                    f"ancilla {a} is not safely uncomputed; refusing to borrow"
                )
            notes.append(f"ancilla {a} unsafe: left in place")
            unplaced.append(a)
            continue
        host = _find_host(circuit, period, working, guest_periods)
        if host is None:
            notes.append(f"ancilla {a}: no idle host for period {period}")
            unplaced.append(a)
            continue
        assignment[a] = host
        guest_periods.setdefault(host, []).append(period)

    removed = set(assignment) | set(untouched)
    survivors = [q for q in range(circuit.num_qubits) if q not in removed]
    wire_map = {q: i for i, q in enumerate(survivors)}
    remap = dict(wire_map)
    for a, host in assignment.items():
        remap[a] = wire_map[host]

    labels = None
    if circuit.labels is not None:
        labels = [circuit.labels[q] for q in survivors]
    new_circuit = Circuit(len(survivors), labels=labels)
    for gate in circuit.gates:
        new_circuit.append(gate.remap(remap))

    periods = {a: intervals[a] for a in active}
    return BorrowPlan(
        circuit=new_circuit,
        assignment=assignment,
        unplaced=unplaced,
        periods=periods,
        wire_map=wire_map,
        original_width=circuit.num_qubits,
        final_width=len(survivors),
        notes=notes,
    )


def _find_host(
    circuit: Circuit,
    period: ActivityInterval,
    working: set,
    guest_periods: Dict[int, List[ActivityInterval]],
) -> Optional[int]:
    """Smallest-index working qubit idle over ``period`` with no guest clash."""
    idle = idle_qubits_during(circuit, period, candidates=working)
    for host in sorted(idle):
        guests = guest_periods.get(host, ())
        if all(not period.overlaps(g) for g in guests):
            return host
    return None
