"""Compatibility shim over the Figure 3.1 width-reduction pass.

The pass now lives in :mod:`repro.alloc` as a pluggable subsystem — an
interval-conflict model (:mod:`repro.alloc.model`), a strategy registry
(:mod:`repro.alloc.registry`) and one module per placement policy.
This module keeps the historical surface alive: :class:`BorrowPlan` is
defined here (it has no dependency on the strategy machinery, which
lets :mod:`repro.alloc` import it without a cycle) and
:func:`borrow_dirty_qubits` delegates to
:func:`repro.alloc.api.allocate` with the seed's first-fit strategy as
the default.  New code should import from :mod:`repro.alloc` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.intervals import ActivityInterval, WindowSet

SafetyCheck = Callable[[Circuit, int], bool]

__all__ = ["BorrowPlan", "SafetyCheck", "borrow_dirty_qubits"]


@dataclass
class BorrowPlan:
    """Outcome of :func:`borrow_dirty_qubits` /
    :func:`repro.alloc.api.allocate`.

    Attributes
    ----------
    circuit:
        The rewritten circuit on the compacted register.
    assignment:
        Original ancilla index -> original host qubit index.
    unplaced:
        Ancillas for which no idle host existed (kept as real wires).
    periods:
        The activity period used for each ancilla.
    windows:
        Lending window of each ancilla — a
        :class:`~repro.circuits.intervals.WindowSet` of disjoint
        gate-index segments a guest occupies whatever wire hosts it
        (the whole period as one segment by default; the restore-point
        segmentation under ``segmented`` allocation — see
        :class:`repro.alloc.model.ConflictModel`).  The online
        multi-programmer shifts these onto the machine timeline to
        decide whether an unplaced ancilla may lease a lent co-tenant
        wire.
    wire_map:
        Original qubit index -> new index, for every surviving wire.
    original_width / final_width:
        Register widths before and after the pass.
    strategy:
        Name of the allocation strategy that produced the placement.
    """

    circuit: Circuit
    assignment: Dict[int, int]
    unplaced: List[int]
    periods: Dict[int, ActivityInterval]
    wire_map: Dict[int, int]
    original_width: int
    final_width: int
    notes: List[str] = field(default_factory=list)
    strategy: str = "greedy"
    windows: Dict[int, WindowSet] = field(default_factory=dict)

    @property
    def qubits_saved(self) -> int:
        return self.original_width - self.final_width

    def __str__(self) -> str:
        lines = [
            f"width {self.original_width} -> {self.final_width}",
            f"borrowed: "
            + ", ".join(f"a{a}->q{h}" for a, h in sorted(self.assignment.items())),
        ]
        if self.unplaced:
            lines.append(f"unplaced ancillas: {sorted(self.unplaced)}")
        return "\n".join(lines)


def borrow_dirty_qubits(
    circuit: Circuit,
    ancillas: Sequence[int],
    safety_check: Optional[SafetyCheck] = None,
    on_unsafe: str = "error",
    strategy="greedy",
) -> BorrowPlan:
    """Eliminate dirty-ancilla wires by borrowing idle qubits.

    Historical façade over :func:`repro.alloc.api.allocate`; see that
    function for the full contract.  ``strategy`` selects any
    registered placement policy (a name or an
    :class:`~repro.alloc.base.AllocationStrategy` instance) and
    defaults to the seed's greedy first-fit, so pre-refactor callers
    observe identical plans.
    """
    from repro.alloc.api import allocate

    return allocate(
        circuit,
        ancillas,
        strategy=strategy,
        safety_check=safety_check,
        on_unsafe=on_unsafe,
    )
