"""Gate objects for the circuit IR.

A :class:`Gate` is immutable: a name, the qubits it touches (controls
first, target last for controlled gates), optional real parameters, and —
for gates outside the named set — an explicit local matrix.

The *classical* gates are X and the multi-controlled-NOT family
(CX / CCX / MCX): they permute computational-basis states, which is the
fragment covered by Theorems 6.2 and 6.4.  Their local matrices are built
lazily because an MCX over many controls has an exponentially large matrix
that the classical simulator never needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError

_SQRT2 = math.sqrt(2.0)

_FIXED_MATRICES = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
    "H": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "S": np.array([[1, 0], [0, 1j]], dtype=complex),
    "SDG": np.array([[1, 0], [0, -1j]], dtype=complex),
    "T": np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex),
    "TDG": np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex),
    "SWAP": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}

_DAGGER_NAMES = {"S": "SDG", "SDG": "S", "T": "TDG", "TDG": "T"}

#: Names whose unitaries permute computational-basis states.
CLASSICAL_NAMES = frozenset({"X", "CX", "CCX", "MCX"})

_SELF_INVERSE = frozenset(
    {"X", "Y", "Z", "H", "SWAP", "CX", "CCX", "MCX", "CZ"}
)


@dataclass(frozen=True)
class Gate:
    """One gate application inside a :class:`~repro.circuits.Circuit`."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()
    matrix: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(
                f"gate {self.name} has duplicate qubits {self.qubits}"
            )
        if not self.qubits:
            raise CircuitError(f"gate {self.name} acts on no qubits")

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    @property
    def is_classical(self) -> bool:
        """True when the gate permutes computational-basis states."""
        return self.name in CLASSICAL_NAMES

    @property
    def controls(self) -> Tuple[int, ...]:
        """Control qubits of an X/CX/CCX/MCX gate (empty for plain X)."""
        if not self.is_classical:
            raise CircuitError(f"gate {self.name} has no control/target split")
        return self.qubits[:-1]

    @property
    def target(self) -> int:
        """Target qubit of an X/CX/CCX/MCX gate."""
        if not self.is_classical:
            raise CircuitError(f"gate {self.name} has no control/target split")
        return self.qubits[-1]

    # ------------------------------------------------------------------ #
    # Matrices
    # ------------------------------------------------------------------ #

    def local_matrix(self) -> np.ndarray:
        """Return the unitary on ``len(self.qubits)`` wires (built lazily)."""
        if self.matrix is not None:
            return self.matrix
        if self.name in _FIXED_MATRICES:
            return _FIXED_MATRICES[self.name]
        if self.name in ("CX", "CCX", "MCX"):
            return _controlled_not_matrix(len(self.qubits) - 1)
        if self.name == "CZ":
            mat = np.eye(4, dtype=complex)
            mat[3, 3] = -1
            return mat
        if self.name == "PHASE":
            (theta,) = self.params
            return np.diag([1.0, np.exp(1j * theta)]).astype(complex)
        if self.name == "CPHASE":
            (theta,) = self.params
            return np.diag([1.0, 1.0, 1.0, np.exp(1j * theta)]).astype(complex)
        if self.name == "RZ":
            (theta,) = self.params
            half = theta / 2.0
            return np.diag(
                [np.exp(-1j * half), np.exp(1j * half)]
            ).astype(complex)
        raise CircuitError(f"gate {self.name} has no known matrix")

    def dagger(self) -> "Gate":
        """Return the inverse gate."""
        if self.name in _SELF_INVERSE:
            return self
        if self.name in _DAGGER_NAMES:
            return Gate(_DAGGER_NAMES[self.name], self.qubits)
        if self.name in ("PHASE", "CPHASE", "RZ"):
            return Gate(self.name, self.qubits, (-self.params[0],))
        matrix = self.local_matrix()
        return Gate(
            f"{self.name}_DG", self.qubits, self.params, matrix.conj().T
        )

    def remap(self, mapping) -> "Gate":
        """Return the same gate on renamed qubits (``mapping[q]`` or ``q``)."""
        qubits = tuple(mapping.get(q, q) for q in self.qubits)
        return Gate(self.name, qubits, self.params, self.matrix)

    def __str__(self) -> str:
        args = ", ".join(str(q) for q in self.qubits)
        if self.params:
            values = ", ".join(f"{p:g}" for p in self.params)
            return f"{self.name}({values})[{args}]"
        return f"{self.name}[{args}]"


def _controlled_not_matrix(num_controls: int) -> np.ndarray:
    """Matrix of NOT with ``num_controls`` controls (identity + row swap)."""
    dim = 2 ** (num_controls + 1)
    mat = np.eye(dim, dtype=complex)
    mat[[dim - 2, dim - 1]] = mat[[dim - 1, dim - 2]]
    return mat


# ---------------------------------------------------------------------- #
# Factory helpers — the vocabulary used throughout the repository.
# ---------------------------------------------------------------------- #


def x(qubit: int) -> Gate:
    """NOT gate."""
    return Gate("X", (qubit,))


def hadamard(qubit: int) -> Gate:
    """Hadamard gate."""
    return Gate("H", (qubit,))


def s_gate(qubit: int) -> Gate:
    """Phase gate S = diag(1, i)."""
    return Gate("S", (qubit,))


def t_gate(qubit: int) -> Gate:
    """T gate = diag(1, e^{i pi/4})."""
    return Gate("T", (qubit,))


def cnot(control: int, target: int) -> Gate:
    """Controlled-NOT."""
    return Gate("CX", (control, target))


def toffoli(control1: int, control2: int, target: int) -> Gate:
    """Doubly-controlled NOT (Toffoli)."""
    return Gate("CCX", (control1, control2, target))


#: Alias matching the QBorrow surface syntax ``CCNOT``.
ccnot = toffoli


def mcx(controls: Sequence[int], target: int) -> Gate:
    """Multi-controlled NOT; degenerates to X/CX/CCX for small fan-in."""
    controls = tuple(controls)
    if len(controls) == 0:
        return x(target)
    if len(controls) == 1:
        return cnot(controls[0], target)
    if len(controls) == 2:
        return toffoli(controls[0], controls[1], target)
    return Gate("MCX", controls + (target,))


def swap(qubit1: int, qubit2: int) -> Gate:
    """SWAP gate."""
    return Gate("SWAP", (qubit1, qubit2))


def phase(theta: float, qubit: int) -> Gate:
    """Single-qubit phase rotation diag(1, e^{i theta})."""
    return Gate("PHASE", (qubit,), (float(theta),))


def cphase(theta: float, control: int, target: int) -> Gate:
    """Controlled phase rotation (used by the Draper QFT adder)."""
    return Gate("CPHASE", (control, target), (float(theta),))


def unitary_gate(
    matrix: np.ndarray, qubits: Sequence[int], name: str = "U"
) -> Gate:
    """An arbitrary unitary gate with an explicit local matrix."""
    matrix = np.asarray(matrix, dtype=complex)
    qubits = tuple(qubits)
    dim = 2 ** len(qubits)
    if matrix.shape != (dim, dim):
        raise CircuitError(
            f"matrix of shape {matrix.shape} does not act on {len(qubits)} qubits"
        )
    if not np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-9):
        raise CircuitError(f"matrix for gate {name} is not unitary")
    return Gate(name, qubits, (), matrix)


def gate_from_name(name: str, qubits: Sequence[int]) -> Gate:
    """Build a named parameter-free gate — used by the ``.qbr`` front end."""
    name = name.upper()
    qubits = tuple(qubits)
    if name == "CCNOT":
        name = "CCX"
    if name == "CNOT":
        name = "CX"
    arity = {"X": 1, "Y": 1, "Z": 1, "H": 1, "S": 1, "T": 1, "CX": 2,
             "CZ": 2, "SWAP": 2, "CCX": 3}
    if name == "MCX":
        if len(qubits) < 2:
            raise CircuitError("MCX needs at least one control and a target")
        return Gate("MCX", qubits)
    if name not in arity:
        raise CircuitError(f"unknown gate name {name!r}")
    if len(qubits) != arity[name]:
        raise CircuitError(
            f"gate {name} expects {arity[name]} qubits, got {len(qubits)}"
        )
    return Gate(name, qubits)
