"""Circuit cost metrics: size, depth, width, gate histograms.

These are the quantities tabulated in Figure 1.1 of the paper (size,
depth, ancilla count for the four constant-adder constructions).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.circuits.circuit import Circuit


def size(circuit: Circuit) -> int:
    """Total gate count."""
    return len(circuit.gates)


def depth(circuit: Circuit) -> int:
    """Greedy as-soon-as-possible depth: gates on disjoint qubits overlap."""
    level: Dict[int, int] = {}
    deepest = 0
    for gate in circuit.gates:
        start = max((level.get(q, 0) for q in gate.qubits), default=0)
        finish = start + 1
        for q in gate.qubits:
            level[q] = finish
        deepest = max(deepest, finish)
    return deepest


def width(circuit: Circuit) -> int:
    """Number of qubits actually touched by gates."""
    return len(circuit.qubits_touched())


def gate_histogram(circuit: Circuit) -> Dict[str, int]:
    """Gate counts keyed by gate name."""
    return dict(Counter(gate.name for gate in circuit.gates))


def toffoli_count(circuit: Circuit) -> int:
    """Number of CCX gates — the headline cost of the MCX constructions."""
    return sum(1 for gate in circuit.gates if gate.name == "CCX")


@dataclass(frozen=True)
class CircuitCosts:
    """The Figure 1.1 cost triple, plus the gate histogram."""

    size: int
    depth: int
    width: int
    histogram: Dict[str, int]

    def __str__(self) -> str:
        return (
            f"size={self.size} depth={self.depth} width={self.width} "
            f"gates={self.histogram}"
        )


def circuit_costs(circuit: Circuit) -> CircuitCosts:
    """Bundle all metrics for reporting."""
    return CircuitCosts(
        size=size(circuit),
        depth=depth(circuit),
        width=width(circuit),
        histogram=gate_histogram(circuit),
    )
