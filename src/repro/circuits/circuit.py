"""The :class:`Circuit` container.

A circuit is an ordered list of gates over ``num_qubits`` integer-indexed
wires.  Optional per-qubit labels keep the connection to the paper's
notation (``q1 .. qn``, dirty ancillas ``a1 .. am``) without affecting
execution.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.circuits.gates import Gate
from repro.errors import CircuitError


class Circuit:
    """An ordered gate list on a fixed-width qubit register."""

    def __init__(
        self,
        num_qubits: int,
        gates: Iterable[Gate] = (),
        labels: Optional[Sequence[str]] = None,
    ):
        if num_qubits < 0:
            raise CircuitError("negative register width")
        self.num_qubits = num_qubits
        self.gates: List[Gate] = []
        if labels is not None and len(labels) != num_qubits:
            raise CircuitError(
                f"{len(labels)} labels for a {num_qubits}-qubit circuit"
            )
        self.labels: Optional[List[str]] = list(labels) if labels else None
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def append(self, gate: Gate) -> "Circuit":
        """Append one gate, validating wire indices; returns self."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"gate {gate} uses qubit {q} outside a "
                    f"{self.num_qubits}-qubit register"
                )
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append many gates; returns self."""
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """Return ``self`` followed by ``other`` (same register width)."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError("cannot compose circuits of different widths")
        return Circuit(self.num_qubits, self.gates + other.gates, self.labels)

    def inverse(self) -> "Circuit":
        """Return the circuit implementing the inverse unitary."""
        gates = [gate.dagger() for gate in reversed(self.gates)]
        return Circuit(self.num_qubits, gates, self.labels)

    def remap(self, mapping: Dict[int, int], num_qubits: int) -> "Circuit":
        """Return the circuit with qubits renamed onto a new register.

        Qubits absent from ``mapping`` keep their index; the result has
        ``num_qubits`` wires.
        """
        return Circuit(num_qubits, (g.remap(mapping) for g in self.gates))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, index):
        return self.gates[index]

    def qubits_touched(self) -> Set[int]:
        """The qubits that appear in at least one gate."""
        touched: Set[int] = set()
        for gate in self.gates:
            touched.update(gate.qubits)
        return touched

    def idle_qubits(self) -> Set[int]:
        """Qubits never touched by any gate — the circuit analogue of
        the paper's syntactic ``idle(S)``."""
        return set(range(self.num_qubits)) - self.qubits_touched()

    def fingerprint(self) -> str:
        """Content hash of the circuit: width, labels and gate list.

        Two circuits with equal fingerprints verify identically, which
        is what lets :class:`repro.verify.batch.BatchVerifier` memoise
        verdicts across calls.  The hash reflects the gate list at call
        time — mutating the circuit afterwards changes it.  Explicit
        ``matrix`` payloads of custom gates are not hashed; such gates
        are outside the classical fragment the verifiers accept anyway.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"{self.num_qubits}".encode())
        for label in self.labels or ():
            encoded = label.encode()
            # Length prefix: ["al","x"] must not collide with ["a","lx"].
            digest.update(f"l{len(encoded)}:".encode() + encoded)
        for gate in self.gates:
            digest.update(
                f"|{gate.name}:{','.join(map(str, gate.qubits))}"
                f":{','.join(map(str, gate.params))}".encode()
            )
        return digest.hexdigest()

    def label_of(self, qubit: int) -> str:
        """Human-readable name of a wire."""
        if self.labels is not None:
            return self.labels[qubit]
        return f"q{qubit}"

    def __str__(self) -> str:
        header = f"Circuit({self.num_qubits} qubits, {len(self.gates)} gates)"
        body = "\n".join(f"  {gate}" for gate in self.gates[:40])
        if len(self.gates) > 40:
            body += f"\n  ... ({len(self.gates) - 40} more)"
        return f"{header}\n{body}" if self.gates else header

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Circuit(num_qubits={self.num_qubits}, gates={len(self.gates)})"
