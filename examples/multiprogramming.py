"""Section 7 made executable: multi-programming with verified borrowing.

Three workloads share one machine.  Job "grover-oracle" needs a dirty
ancilla for its CCCNOT; job "arithmetic" runs a constant adder whose
carry ancillas are also dirty; job "sampler" is a light circuit with an
idle tail.  The scheduler verifies every requested ancilla (Section 6
pipeline) and only then lets it borrow an idle co-tenant qubit — an
unsafe ancilla would corrupt another program's state, the failure mode
the paper warns about for QuCloud-style clouds.

Run:  python examples/multiprogramming.py
"""

from repro.adders import haner_ripple_constant_adder
from repro.circuits import Circuit, cnot, x
from repro.mcx import cccnot_with_dirty_ancilla
from repro.multiprog import BorrowRequest, MultiProgrammer, QuantumJob


def grover_oracle_job() -> QuantumJob:
    circuit = Circuit(5, labels=["q1", "q2", "a", "q3", "flag"]).extend(
        cccnot_with_dirty_ancilla([0, 1, 3], 4, 2)
    )
    return QuantumJob("grover-oracle", circuit, [BorrowRequest(2)])


def arithmetic_job() -> QuantumJob:
    layout = haner_ripple_constant_adder(3, 5)
    requests = [BorrowRequest(w) for w in layout.dirty_ancillas]
    return QuantumJob("arithmetic", layout.circuit, requests)


def sampler_job() -> QuantumJob:
    circuit = Circuit(4, labels=["s0", "s1", "s2", "s3"])
    circuit.extend([cnot(0, 1), x(0), cnot(0, 1)])
    return QuantumJob("sampler", circuit, [])


def rogue_job() -> QuantumJob:
    """An ancilla that is NOT safely uncomputed (left flipped)."""
    circuit = Circuit(2, labels=["w", "anc"]).extend([cnot(0, 1), x(1)])
    return QuantumJob("rogue", circuit, [BorrowRequest(1)])


def main() -> None:
    jobs = [grover_oracle_job(), arithmetic_job(), sampler_job()]
    naive = sum(job.circuit.num_qubits for job in jobs)
    print(f"=== co-scheduling {len(jobs)} jobs (naive width {naive}) ===")
    scheduler = MultiProgrammer(machine_size=naive)
    result = scheduler.schedule(jobs)
    print(result.summary())
    print(
        f"\nborrow assignments (composite wires): "
        f"{result.plan.assignment or 'none'}"
    )

    print("\n=== adding a rogue job with an unsafe ancilla ===")
    scheduler = MultiProgrammer(machine_size=naive + 2)
    result = scheduler.schedule(jobs + [rogue_job()])
    print(result.summary())
    print(
        "\nThe rogue ancilla is kept on a private wire: borrowing it\n"
        "across a program boundary would corrupt the co-tenant."
    )

    print("\n=== re-scheduling: verdicts are memoised per circuit ===")
    scheduler.schedule(jobs + [rogue_job()])
    verifier = scheduler.verifier
    print(
        f"batch engine cache: {verifier.cache_hits} hits / "
        f"{verifier.cache_misses} misses — repeated borrows of the same "
        f"ancilla cost no solver runs"
    )


if __name__ == "__main__":
    main()
