"""Section 7 made executable: ONLINE multi-programming with verified
dirty-qubit borrowing.

Jobs arrive at a shared machine over time, QuCloud-style.  Each
admission width-reduces the arriving circuit with a registered
allocation strategy (``repro.alloc``), lazily batch-verifies its
requested ancillas — only ancillas with a candidate host pay solver
time — and lets a verified-safe ancilla borrow an idle wire a resident
co-tenant lends out.  Completed jobs release their wires back to the
pool; a wire lent to a still-running guest stays occupied until the
guest finishes.  Lending is *time-sliced*: a lease covers only the
gate-index window in which the guest's ancilla actually touches the
wire, so several guests with disjoint windows multiplex one idle wire
(the composite-interleave construction of Section 7).  An unsafe
ancilla is never borrowed across a program boundary — it would corrupt
the co-tenant, the failure mode the paper warns about for
multi-programming clouds.

Run:  python examples/multiprogramming.py
"""

from repro.adders import haner_ripple_constant_adder
from repro.circuits import Circuit, cnot, restore_segments, x
from repro.mcx import cccnot_with_dirty_ancilla
from repro.multiprog import BorrowRequest, MultiProgrammer, QuantumJob
from repro.testing import lender_job, segmented_guest_job, windowed_guest_job


def grover_oracle_job(name="grover-oracle") -> QuantumJob:
    circuit = Circuit(5, labels=["q1", "q2", "a", "q3", "flag"]).extend(
        cccnot_with_dirty_ancilla([0, 1, 3], 4, 2)
    )
    return QuantumJob(name, circuit, [BorrowRequest(2)])


def arithmetic_job(name="arithmetic") -> QuantumJob:
    layout = haner_ripple_constant_adder(3, 5)
    requests = [BorrowRequest(w) for w in layout.dirty_ancillas]
    return QuantumJob(name, layout.circuit, requests)


def sampler_job(name="sampler") -> QuantumJob:
    circuit = Circuit(4, labels=["s0", "s1", "s2", "s3"])
    circuit.extend([cnot(0, 1), x(0), cnot(0, 1)])
    return QuantumJob(name, circuit, [])


def rogue_job(name="rogue") -> QuantumJob:
    """An ancilla that is NOT safely uncomputed (left flipped)."""
    circuit = Circuit(2, labels=["w", "anc"]).extend([cnot(0, 1), x(1)])
    return QuantumJob(name, circuit, [BorrowRequest(1)])


def main() -> None:
    machine = MultiProgrammer(16, strategy="greedy")
    print("=== online arrivals on a 16-qubit machine ===")

    print("\n[t=0] sampler arrives (its two idle wires become lendable)")
    machine.admit(sampler_job())
    print(machine.snapshot())

    print("\n[t=1] grover-oracle arrives; its verified ancilla borrows")
    print("      an idle sampler wire instead of a fresh qubit")
    admission = machine.admit(grover_oracle_job())
    print(machine.snapshot())
    print(f"      cross-program borrows: {admission.cross_hosts}")

    print("\n[t=2] arithmetic arrives, placed with the lookahead strategy")
    print("      (a per-admission policy knob; its dirty carries are")
    print("      packed onto its own idle wires)")
    admission = machine.admit(arithmetic_job(), strategy="lookahead")
    print(machine.snapshot())
    print(f"      internal borrow plan: {admission.plan.assignment}")

    print("\n[t=3] rogue arrives: its ancilla verifies UNSAFE, so it")
    print("      gets a private wire — never a co-tenant's")
    admission = machine.admit(rogue_job())
    print(f"      safety verdicts: {admission.safety}")
    print(f"      cross-program borrows: {admission.cross_hosts or 'none'}")

    print("\n[t=4] a second oracle is REJECTED — machine full")
    try:
        machine.admit(grover_oracle_job("grover-2"))
    except Exception as error:
        print(f"      {error}")

    print("\n[t=5] sampler and arithmetic complete; un-lent wires free")
    print("      up (the wire lent to grover-oracle stays busy until")
    print("      it exits)")
    freed = machine.release("sampler")
    print(f"      sampler freed wires: {freed}")
    machine.release("arithmetic")
    print(machine.snapshot())

    print("\n[t=6] now grover-2 fits")
    machine.admit(grover_oracle_job("grover-2"))
    print(machine.snapshot())

    print("\n=== queued arrivals: rejected jobs wait, then backfill ===")
    queue_machine = MultiProgrammer(6, queue_policy="backfill")
    print("a 6-qubit machine with the 'backfill' queue policy")

    print("\n[t=0] sampler (4 wires) arrives and is admitted")
    queue_machine.submit(sampler_job())
    print("\n[t=1] grover-oracle (5 wires) does not fit -> QUEUED,")
    print("      with a 6-event timeout instead of bouncing")
    outcome = queue_machine.submit(grover_oracle_job(), timeout=6)
    print(f"      outcome: {outcome.status}, pending={queue_machine.pending()}")

    print("\n[t=2] tiny (2 wires) arrives; backfill lets it slip past")
    print("      the blocked head (strict fifo would queue it)")
    tiny = QuantumJob(
        "tiny", Circuit(2, labels=["t0", "t1"]).extend([cnot(0, 1)]), []
    )
    outcome = queue_machine.submit(tiny)
    print(f"      outcome: {outcome.status}")
    print(queue_machine.snapshot())

    print("\n[t=3] sampler completes -> the release triggers a backfill")
    print("      pass; grover-oracle still waits (tiny holds 2 wires)")
    queue_machine.release("sampler")
    print(queue_machine.snapshot())

    print("\n[t=4] tiny completes -> now grover-oracle is admitted from")
    print("      the queue")
    queue_machine.release("tiny")
    print(queue_machine.snapshot())
    print(f"      queue stats: {queue_machine.stats()}")

    print("\n=== time-sliced lending: one idle wire, many guests ===")
    window_machine = MultiProgrammer(9)
    print("a 9-qubit machine; a lender job offers its two idle wires")
    window_machine.admit(lender_job("lender"))

    print("\n[t=0] early-window guest arrives (ancilla active over")
    print("      gates [0,1]) and leases the first offered wire")
    early = window_machine.admit(windowed_guest_job("early", prelude=0))
    print(f"      leases: {[str(lease) for lease in early.leases.values()]}")

    print("\n[t=1] late-window guest (gates [6,7]) lands on the SAME")
    print("      wire — the windows are disjoint, so the leases stack")
    late = window_machine.admit(windowed_guest_job("late", prelude=6))
    print(f"      leases: {[str(lease) for lease in late.leases.values()]}")
    print("      per-wire lease table:")
    for wire, leases in window_machine.lease_table().items():
        spans = ", ".join(
            f"{lease.guest}@{lease.window}" for lease in leases
        )
        print(f"        m{wire}: {spans}")

    print("\n[t=2] an overlapping-window guest (gates [1,2]) cannot")
    print("      share that wire and takes the second offer instead")
    clash = window_machine.admit(windowed_guest_job("clash", prelude=1))
    print(f"      leases: {[str(lease) for lease in clash.leases.values()]}")
    print(
        f"      whole-residency lending would have needed "
        f"{sum(1 for _ in (early, late, clash))} separate wires for "
        f"these guests; windowed lending used "
        f"{len(window_machine.lease_table())}"
    )

    print("\n=== segmented lending: restore gaps become capacity ===")
    print("a guest whose ancilla runs two identity blocks around a")
    print("long idle gap — the restore-point analysis proves the wire")
    print("can be handed back in between")
    gappy = segmented_guest_job("gappy", prelude=0, span=1, gap=6)
    print(
        f"      restore segments of gappy's ancilla: "
        f"{restore_segments(gappy.circuit, 1)}"
    )
    seg_machine = MultiProgrammer(9, lending="segmented")
    seg_machine.admit(lender_job("lender"))
    gap_adm = seg_machine.admit(gappy)
    print(
        f"      lease covers only the segments: "
        f"{[str(lease) for lease in gap_adm.leases.values()]}"
    )

    print("\n[t=1] a guest whose window [3,4] sits inside gappy's gap")
    print("      lands on the SAME wire — under plain windowed lending")
    print("      the whole hull [0,9] would have blocked it")
    mid = seg_machine.admit(windowed_guest_job("mid", prelude=3))
    print(f"      leases: {[str(lease) for lease in mid.leases.values()]}")
    for wire, leases in seg_machine.lease_table().items():
        spans = ", ".join(
            f"{lease.guest}@{lease.window}" for lease in leases
        )
        print(f"        m{wire}: {spans}")

    print("\n=== lazy verification: only placeable ancillas pay ===")
    print(
        f"solver runs so far: {machine.verifier.cache_misses} "
        f"(memoised hits: {machine.verifier.cache_hits}) — identical "
        f"circuits re-verify for free, and ancillas with no candidate "
        f"host are never checked at all"
    )

    print("\n=== the batch path is a replay over the online engine ===")
    jobs = [grover_oracle_job(), arithmetic_job(), sampler_job()]
    result = MultiProgrammer(
        sum(j.circuit.num_qubits for j in jobs), strategy="interval-graph"
    ).schedule(jobs)
    print(result.summary())
    print(
        f"\ncomposite borrow assignments ({result.plan.strategy}): "
        f"{result.plan.assignment or 'none'}"
    )


if __name__ == "__main__":
    main()
