"""The Figure 3.1 width-reduction story: borrow idle qubits as dirty
ancillas.

Starts from the 7-wire circuit of Figure 3.1a (two CCCNOT routines with
dirty ancillas a1, a2 over five working qubits), verifies both ancillas
are safely uncomputed, and lets the borrow scheduler map both onto the
idle working qubit q3 — reproducing Figures 3.1b/3.1c: same function,
five qubits, no ancilla wires.

Run:  python examples/width_reduction.py
"""

from repro.circuits import Circuit, borrow_dirty_qubits, cnot, toffoli
from repro.circuits.intervals import activity_intervals
from repro.verify import classical_safe_uncomputation


def build_figure_31a() -> Circuit:
    circuit = Circuit(7, labels=["q1", "q2", "q3", "q4", "q5", "a1", "a2"])
    circuit.append(cnot(1, 2))
    # CCCNOT(q1,q2,q4 -> q5) borrowing a1 (wire 5)
    circuit.extend(
        [toffoli(0, 1, 5), toffoli(5, 3, 4), toffoli(0, 1, 5), toffoli(5, 3, 4)]
    )
    # CCCNOT(q4,q5,q2 -> q1) borrowing a2 (wire 6)
    circuit.extend(
        [toffoli(3, 4, 6), toffoli(6, 1, 0), toffoli(3, 4, 6), toffoli(6, 1, 0)]
    )
    return circuit


def main() -> None:
    circuit = build_figure_31a()
    print("=== Figure 3.1a: 5 working qubits + 2 dirty ancillas ===")
    print(circuit)

    print("\n--- ancilla periods (gate-index intervals) ---")
    intervals = activity_intervals(circuit)
    for wire in (5, 6):
        print(f"  {circuit.label_of(wire)}: period {intervals[wire]}")

    print("\n--- verifying safe uncomputation before borrowing ---")
    for wire in (5, 6):
        result = classical_safe_uncomputation(circuit, wire)
        print(f"  {circuit.label_of(wire)}: {'safe' if result.safe else 'UNSAFE'}")

    plan = borrow_dirty_qubits(
        circuit,
        ancillas=[5, 6],
        safety_check=lambda c, q: classical_safe_uncomputation(c, q).safe,
    )
    print("\n--- borrow plan ---")
    print(plan)
    print("\n=== rewritten circuit (Figure 3.1c) ===")
    print(plan.circuit)
    print(
        "\nNote: a *clean*-qubit scheduler could not reuse q3 here — the"
        "\nopening CNOT knocks q3 out of |0>, but a dirty borrow only"
        "\nneeds idleness (Section 3 of the paper)."
    )


if __name__ == "__main__":
    main()
