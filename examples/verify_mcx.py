"""Verify the paper's multi-controlled-NOT benchmark (Figure 10.4).

Builds the ``mcx.qbr`` construction — a (2m-1)-controlled NOT from
16(m-2) Toffolis and a single dirty ancilla — at a few hundred qubits,
verifies the ancilla, and contrasts the three MCX constructions of the
repository (clean ladder, dirty chain, Gidney single-dirty).

Run:  python examples/verify_mcx.py [m]
"""

import sys

from repro.circuits import Circuit, circuit_costs
from repro.mcx import gidney_mcx, mcx_clean_ladder, mcx_dirty_chain
from repro.verify import verify_circuit


def main(m: int = 100) -> None:
    layout = gidney_mcx(m)
    print(f"=== mcx.qbr with m = {m}: C^{layout.n}X ===")
    print(f"costs: {circuit_costs(layout.circuit)}")

    for backend in ("cdcl", "bdd", "portfolio"):
        report = verify_circuit(
            layout.circuit, [layout.ancilla], backend=backend
        )
        verdict = report.verdicts[0]
        print(
            f"backend={backend:<5} ancilla '{verdict.name}': "
            f"{'SAFE' if verdict.safe else 'UNSAFE'} "
            f"({verdict.solve_seconds:.3f}s)"
        )

    print("\n--- construction comparison for k = 8 controls ---")
    k = 8
    ladder = Circuit(2 * k - 1).extend(
        mcx_clean_ladder(list(range(k)), k, list(range(k + 1, 2 * k - 1)))
    )
    chain = Circuit(2 * k - 1).extend(
        mcx_dirty_chain(list(range(k)), k, list(range(k + 1, 2 * k - 1)))
    )
    print(f"clean ladder ({k - 2} clean ancillas): {circuit_costs(ladder)}")
    print(f"dirty chain  ({k - 2} dirty ancillas): {circuit_costs(chain)}")

    ancillas = list(range(k + 1, 2 * k - 1))
    ladder_report = verify_circuit(ladder, ancillas, backend="bdd")
    chain_report = verify_circuit(chain, ancillas, backend="bdd")
    print(
        f"ladder ancillas safe as dirty? {ladder_report.all_safe} "
        f"(they require |0> — clean-only reuse)"
    )
    print(f"chain ancillas safe as dirty?  {chain_report.all_safe}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
