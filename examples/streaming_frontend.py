"""Parse-while-allocate: the streaming front end, end to end.

The offline pipeline parses a whole program, elaborates it, and only
then allocates.  The streaming front end overlaps all three: surface
text (``iter_program``) and OpenQASM (``iter_qasm_gates``) yield gates
as they are parsed, the ``StreamingAllocator`` consumes them under an
*adaptive* lookahead policy that widens its horizon when the stream
disturbs its plan, and ``MultiProgrammer.admit_stream`` admits a job
on a *prefix* — the lease is granted before the tail of the program
has even been read.

The walk-through below shows

* gates flowing out of the surface parser straight into the online
  allocator, one pass, no intermediate program object,
* the adaptive policy moving its horizon live, and
* prefix admission: time-to-first-lease is one prefix, not one parse.

Run:  python examples/streaming_frontend.py
"""

from repro.alloc import StreamingAllocator
from repro.circuits import Circuit, cnot, iter_qasm_gates, x
from repro.lang.surface import iter_program
from repro.lang.surface.sources import adder_qbr_source
from repro.multiprog import MultiProgrammer, QuantumJob


def parse_while_allocate() -> None:
    print("=== surface text -> gates -> placements, one pass ===")
    source = adder_qbr_source(8)
    stream = iter_program(source)
    allocator = None
    for count, gate in enumerate(stream, start=1):
        if allocator is None:
            # The register width is known as soon as the declarations
            # have streamed past — long before the last gate exists.
            allocator = StreamingAllocator(
                stream.num_wires, [], lookahead="adaptive"
            )
        allocator.feed(gate)
    program = stream.result()
    dirty = sorted(program.dirty_wires)
    print(f"adder(8): {count} gates streamed, "
          f"{program.circuit.num_qubits} wires, {len(dirty)} dirty borrows")
    print(f"allocator saw every gate mid-parse: "
          f"{allocator.stats.gates == count}")
    allocator.close()


def adaptive_horizon_live() -> None:
    print("\n=== the adaptive policy moves its horizon ===")
    # Wire 3 is a dirty ancilla; x(0) bursts disturb any tentative
    # placement on host 0, and the policy reacts by widening.
    gates = [
        cnot(1, 3), x(0), cnot(1, 3), x(0), x(0), cnot(1, 3), cnot(1, 3),
    ]
    allocator = StreamingAllocator(4, [3], lookahead="adaptive")
    for i, gate in enumerate(gates):
        allocator.feed(gate)
        print(f"[gate {i}] {gate.name:>2} on {gate.qubits}  "
              f"policy={allocator.policy.describe()}")
    allocator.close()
    print(f"stats: {allocator.stats.as_dict()}")


def prefix_admission() -> None:
    print("\n=== admit on a prefix: the lease beats the parse ===")
    header = "OPENQASM 2.0;\nqreg q[4];\n"
    # A safe dirty-borrow prefix on q[3] ...
    prefix_text = (
        "ccx q[0],q[1],q[3];\ncx q[3],q[2];\n"
        "ccx q[0],q[1],q[3];\ncx q[3],q[2];\n"
    )
    # ... followed by a long tail that never touches q[3] again.
    tail = "x q[0];\ncx q[0],q[1];\n" * 500
    text = header + prefix_text + tail

    mp = MultiProgrammer(9, max_workers=1)
    lender = Circuit(5).extend([cnot(0, 1), cnot(1, 2)])
    mp.admit(QuantumJob("lender", lender, []))

    stream = iter_qasm_gates(text)
    prefix = [next(stream) for _ in range(4)]
    handle = mp.admit_stream(
        "guest", stream.num_qubits, [3], prefix=prefix
    )
    granted = list(handle.admission.leases)
    print(f"resident after 4 of {4 + 1000} gates; "
          f"leases granted on wires {granted}")
    handle.extend(stream)  # the tail arrives while the job is resident
    handle.close()
    streaming = mp.stats()["streaming"]
    print(f"stream counters: admissions={streaming['admissions']} "
          f"refinements={streaming['refinements']} "
          f"revoked={streaming['revoked_to_queue']}")


def main() -> None:
    parse_while_allocate()
    adaptive_horizon_live()
    prefix_admission()


if __name__ == "__main__":
    main()
