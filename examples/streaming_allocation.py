"""Streaming/JIT borrow allocation: committing placements as gates arrive.

The offline pipeline (``repro.alloc.allocate``) sees a finished
circuit.  A live service — a compiler emitting gates, a scheduler
receiving a program over the wire — sees a *gate stream*.
``StreamingAllocator`` makes the borrow decisions online: every fed
gate updates an incremental interval-conflict model (no rescans of the
prefix), tentative placements ride a bounded ``lookahead`` buffer, and
decisions are committed — made final — once the stream has moved a
full horizon past an ancilla's last activity.

The walk-through below shows

* the two decision tiers (tentative vs committed) and a live rollback,
* the lookahead knob trading commit latency against plan quality, and
* the differential contract: ``lookahead=None`` (∞) reproduces the
  offline greedy plan gate-for-gate.

Run:  python examples/streaming_allocation.py
"""

from repro.alloc import StreamingAllocator, allocate, stream_allocate
from repro.circuits import Circuit, cnot, toffoli, x
from repro.testing import random_reversible_circuit


def figure_31a() -> Circuit:
    """The paper's running example: two CCCNOT routines, each with a
    dirty ancilla, over five working qubits (see
    ``examples/width_reduction.py`` for the offline treatment)."""
    circuit = Circuit(7, labels=["q1", "q2", "q3", "q4", "q5", "a1", "a2"])
    circuit.append(cnot(1, 2))
    circuit.extend(
        [toffoli(0, 1, 5), toffoli(5, 3, 4), toffoli(0, 1, 5), toffoli(5, 3, 4)]
    )
    circuit.extend(
        [toffoli(3, 4, 6), toffoli(6, 1, 0), toffoli(3, 4, 6), toffoli(6, 1, 0)]
    )
    return circuit


def tiers_and_rollback() -> None:
    print("=== tentative vs committed: a rollback, live ===")
    print("wire 3 is the ancilla; hosts are chosen smallest-index first")
    allocator = StreamingAllocator(4, [3])  # lookahead=None: ∞

    allocator.feed(cnot(1, 3))
    print(f"[gate 0] cnot(1,3)  tentative={allocator.tentative()}"
          "   (host 0 looks free)")

    allocator.feed(x(0))
    print(f"[gate 1] x(0)       tentative={allocator.tentative()}"
          "   (host 0 busy, but outside the window so far)")

    allocator.feed(cnot(1, 3))
    print(f"[gate 2] cnot(1,3)  tentative={allocator.tentative()}"
          "   (window grew over gate 1: ROLLBACK to host 2)")
    print(f"stats: {allocator.stats.as_dict()}")

    plan = allocator.close()
    print(f"closed: assignment={plan.assignment} "
          f"final_width={plan.final_width}")


def lookahead_sweep() -> None:
    print("\n=== the lookahead knob: commit latency vs plan quality ===")
    print("20 random 9-wire circuits (6 data + 3 dirty ancillas);")
    print("offline greedy is the quality yardstick\n")
    cases = [
        random_reversible_circuit(
            seed, num_data=6, num_ancillas=3, segment_gates=4,
            middle_gates=8,
        )
        for seed in range(100, 120)
    ]
    offline_width = sum(
        allocate(c, a, strategy="greedy").final_width for c, a in cases
    )
    for lookahead in (0, 8, 64, None):
        total = sum(
            stream_allocate(c, a, lookahead=lookahead).final_width
            for c, a in cases
        )
        name = "inf" if lookahead is None else lookahead
        verdict = "== offline" if total == offline_width else (
            f"+{total - offline_width} wires over offline"
        )
        print(f"  lookahead={name!s:>4}  total width {total:4d}  "
              f"({verdict})")
    print("\nK=0 commits at first sight and pays for it; a modest")
    print("horizon already recovers the offline plan on this corpus.")


def infinity_equals_offline() -> None:
    print("\n=== the differential contract on Figure 3.1 ===")
    circuit = figure_31a()
    dirty = [5, 6]
    print(f"Figure 3.1a: {len(circuit.gates)} gates, 5 working qubits, "
          f"2 dirty ancillas")

    allocator = StreamingAllocator(
        circuit.num_qubits, dirty, labels=circuit.labels
    )
    for gate in circuit.gates:
        allocator.feed(gate)
    streamed = allocator.close()
    offline = allocate(circuit, dirty, strategy="greedy")

    print(f"streamed ({allocator.name}): "
          f"width {streamed.final_width}, "
          f"assignment {streamed.assignment}")
    print(f"offline  (greedy):                  "
          f"width {offline.final_width}, "
          f"assignment {offline.assignment}")
    same = (
        streamed.assignment == offline.assignment
        and streamed.circuit.fingerprint() == offline.circuit.fingerprint()
    )
    print(f"plans identical gate-for-gate: {same}")


def incremental_model_is_live() -> None:
    print("\n=== the model is queryable mid-stream ===")
    circuit = Circuit(4).extend(
        [cnot(1, 3), x(0), cnot(1, 3), x(2), x(2)]
    )
    allocator = StreamingAllocator(4, [3], lookahead=2)
    for i, gate in enumerate(circuit.gates):
        allocator.feed(gate)
        placement = allocator.placement()
        print(f"[gate {i}] committed={allocator.committed()} "
              f"tentative={allocator.tentative()} "
              f"placement={placement.assignment}")
    allocator.close()
    print(f"stats: {allocator.stats.as_dict()}")


def main() -> None:
    tiers_and_rollback()
    lookahead_sweep()
    infinity_equals_offline()
    incremental_model_is_live()


if __name__ == "__main__":
    main()
