"""Verify the paper's adder benchmark (Figure 6.2) end to end.

Parses the verbatim ``adder.qbr`` program, verifies all ``n-1`` dirty
carry ancillas on both solver backends, and then injects a fault (drops
one uncompute gate) to show how an unsafe ancilla is reported with a
replayable counterexample.

Run:  python examples/verify_adder.py [n]
"""

import sys

from repro.circuits import Circuit
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source
from repro.verify import verify_circuit


def main(n: int = 16) -> None:
    source = adder_qbr_source(n)
    print(f"=== adder.qbr with n = {n} ===")
    program = elaborate(source)
    print(f"elaborated: {program.summary()}")

    for backend in ("bdd", "cdcl", "portfolio"):
        report = verify_circuit(
            program.circuit, program.dirty_wires, backend=backend
        )
        status = "ALL SAFE" if report.all_safe else "UNSAFE"
        print(
            f"backend={backend:<9} {status}: {len(report.verdicts)} dirty "
            f"qubits in {report.solver_seconds:.3f}s solver time"
        )

    print("\n--- batch engine: one shared tracking/compile pass ---")
    import time

    from repro.verify import BatchVerifier

    start = time.perf_counter()
    for qubit in program.dirty_wires:  # the pre-batch caller pattern
        verify_circuit(program.circuit, [qubit], backend="bdd")
    sequential = time.perf_counter() - start
    start = time.perf_counter()
    BatchVerifier(backend="bdd").verify_circuit(
        program.circuit, program.dirty_wires
    )
    batch = time.perf_counter() - start
    print(
        f"per-qubit loop {sequential:.3f}s vs one batch call {batch:.3f}s "
        f"({sequential / batch:.1f}x)"
    )

    print("\n--- fault injection: drop the final uncompute gate ---")
    broken = Circuit(
        program.circuit.num_qubits,
        program.circuit.gates[:-1],
        labels=program.circuit.labels,
    )
    report = verify_circuit(broken, program.dirty_wires, backend="bdd")
    for verdict in report.verdicts:
        if not verdict.safe:
            print(f"  {verdict}")
            print(f"    {verdict.counterexample.describe()}")
    if report.all_safe:
        print("  (mutation did not affect safety)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
