"""Borrow checking: prove dirty-qubit safety statically, skip the solver.

Walks the ownership extensions of the surface language
(reference: ``docs/language.md``):

1. write the Figure 1.3 CCCNOT as a scoped
   ``borrow a { within {...} apply {...} }`` block and watch the
   elaborator emit the C; D; reverse(C); D double-conjugation with the
   borrowed wire *statically proven* safe;
2. cross-check the proof against the Section 6 solver;
3. break the program four ways and show the rendered ``BQ###``
   diagnostics (caret spans, notes, fix-hints);
4. admit the checked program through ``MultiProgrammer`` and compare
   solver obligations against the identical program admitted
   unchecked — the checker's proof discharges the obligation for free
   (``stats()['static_discharged']``).

Run:  python examples/borrow_checking.py
"""

from repro.lang import check_program
from repro.lang.surface import elaborate, job_from_qbr, verify_qbr
from repro.multiprog.scheduler import MultiProgrammer

FIG13 = """\
borrow@ q1; borrow@ q2; borrow@ q3; alloc q4;
borrow a {
  within { CCNOT[q1, q2, a]; }
  apply  { CCNOT[a, q3, q4]; }
}
"""

# q5 is busy only at the circuit edges, so the borrowed wire has a
# candidate host and admission actually owes a verification obligation.
EDGE_HOST = """\
borrow@ q1; borrow@ q2; borrow@ q3; alloc q4; borrow@ q5;
CNOT[q1, q5];
borrow a {
  within { CCNOT[q1, q2, a]; }
  apply  { CCNOT[a, q3, q4]; }
}
CNOT[q2, q5];
"""

BROKEN = {
    "use after release (BQ001)": "borrow q; release q; X[q];",
    "borrow escapes its block (BQ003)": (
        "borrow@ x;\n"
        "borrow b { within { CNOT[x, b]; } apply { } }\n"
        "X[b];"
    ),
    "aliased gate operands (BQ007)": "borrow@ x; CNOT[x, x];",
    "dirty read in apply (BQ010)": (
        "borrow@ x; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[x, b]; }\n"
        "  apply  { CCNOT[b, x, t]; }\n"
        "}"
    ),
}


def main() -> None:
    print("=== Figure 1.3 as a scoped borrow block ===")
    print(FIG13)
    program = elaborate(FIG13)
    print("elaborates to C; D; reverse(C); D:")
    for gate in program.circuit.gates:
        print(f"  {gate}")
    print(f"checker-proven dirty wires: {program.proven_wires}")

    print("\n--- cross-checking the proof against the solver ---")
    report = verify_qbr(program)
    for verdict in report.verdicts:
        print(f"  solver says wire {verdict.qubit} ('{verdict.name}'): "
              f"safe={verdict.safe}")
    trusted = verify_qbr(FIG13, trust_checker=True)
    print(f"  with trust_checker=True the solver checks "
          f"{len(trusted.verdicts)} wire(s) — the proof already covered it")

    print("\n=== What the checker rejects ===")
    for title, source in BROKEN.items():
        print(f"\n--- {title} ---")
        print(check_program(source).render())

    print("\n=== Static discharge through the scheduler ===")
    for trust in (True, False):
        scheduler = MultiProgrammer(8)
        job = job_from_qbr("edge", EDGE_HOST, trust_checker=trust)
        admission = scheduler.admit(job)
        label = "checked  " if trust else "unchecked"
        print(
            f"  {label}: admitted={admission is not None} "
            f"qubits_saved={admission.qubits_saved} "
            f"static_discharged={scheduler.stats()['static_discharged']} "
            f"solver_calls={scheduler.verifier.cache_misses}"
        )
    print(
        "\nsame program, same placement — but the borrow-checked job "
        "paid zero solver calls."
    )


if __name__ == "__main__":
    main()
