"""Quickstart: safe uncomputation of a dirty qubit in five minutes.

Walks the paper's introduction:

1. build the Figure 1.3 circuit — a three-controlled NOT from four
   Toffolis and one *dirty* borrowed qubit;
2. verify the dirty qubit is safely uncomputed (Theorem 6.4 reduction,
   decided by both the SAT and the BDD backend);
3. print the Figure 6.1 formula-construction trace;
4. show the Figure 1.4 trap: a circuit that restores every
   computational-basis state yet corrupts a dirty qubit in |+>, caught
   with a concrete counterexample.

Run:  python examples/quickstart.py

Where to next: ``docs/architecture.md`` maps the subsystems,
``docs/language.md`` documents the ``.qbr`` surface language (the same
Figure 1.3 circuit as a checked ``borrow { within/apply }`` block),
and ``examples/borrow_checking.py`` shows the static checker proving
this construction without a solver call.
"""

from repro.circuits import Circuit, cnot, toffoli
from repro.verify import formula_trace, verify_circuit
from repro.verify.booltrace import render_trace
from repro.verify.classical import naive_classical_check


def build_figure_13() -> Circuit:
    """CCCNOT(q1,q2,q3 -> q4) borrowing dirty qubit a (wire 2)."""
    circuit = Circuit(5, labels=["q1", "q2", "a", "q3", "q4"])
    circuit.extend(
        [
            toffoli(0, 1, 2),  # fold q1,q2 into the dirty qubit
            toffoli(2, 3, 4),  # use it as a control
            toffoli(0, 1, 2),  # toggle the fold back out
            toffoli(2, 3, 4),  # second use cancels the dirty offset
        ]
    )
    return circuit


def main() -> None:
    circuit = build_figure_13()
    print("=== Figure 1.3: CCCNOT with one dirty qubit ===")
    print(circuit)

    print("\n--- verifying the dirty qubit 'a' on two backends ---")
    for backend in ("cdcl", "bdd"):
        report = verify_circuit(circuit, dirty_qubits=[2], backend=backend)
        print(report.summary())

    print("\n--- Figure 6.1: tracked Boolean formulas, gate by gate ---")
    print(render_trace(formula_trace(circuit)))

    print("\n=== Figure 1.4: why basis-state checks are not enough ===")
    # 'a' controls a NOT: every classical input restores a...
    trap = Circuit(2, labels=["q", "a"]).append(cnot(1, 0))
    print(f"naive clean-qubit check passes: {naive_classical_check(trap, 1)}")
    report = verify_circuit(trap, dirty_qubits=[1], backend="cdcl")
    verdict = report.verdicts[0]
    print(f"dirty-qubit verdict: {verdict}")
    print(f"counterexample: {verdict.counterexample.describe()}")
    print(
        "flip the dirty qubit's initial value and qubit 'q' changes —\n"
        "the |+> state (and any entanglement) would be corrupted."
    )


if __name__ == "__main__":
    main()
