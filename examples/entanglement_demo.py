"""Theorem 5.4 made visible: unsafe borrows corrupt external entanglement.

A dirty qubit may be borrowed *from another computation* and can be
entangled with qubits the borrower never sees.  Safe uncomputation is
exactly the guarantee that this external entanglement survives.  This
demo puts the borrowed qubit in a Bell pair with a hypothetical external
qubit and measures the Bell fidelity after:

* the Figure 1.3 circuit (safe)  — fidelity stays 1;
* the same circuit with one Toffoli dropped (unsafe) — fidelity drops,
  exactly at the counterexample input the verifier reports.

Run:  python examples/entanglement_demo.py
"""

from repro.circuits import Circuit, toffoli
from repro.verify import (
    demonstrate,
    demonstrate_entanglement_violation,
    verify_circuit,
)
from repro.verify.pipeline import Counterexample


def safe_circuit() -> Circuit:
    return Circuit(5, labels=["q1", "q2", "a", "q3", "q4"]).extend(
        [toffoli(0, 1, 2), toffoli(2, 3, 4), toffoli(0, 1, 2), toffoli(2, 3, 4)]
    )


def broken_circuit() -> Circuit:
    """Figure 1.3 with the uncomputing Toffoli dropped."""
    return Circuit(5, labels=["q1", "q2", "a", "q3", "q4"]).extend(
        [toffoli(0, 1, 2), toffoli(2, 3, 4), toffoli(2, 3, 4)]
    )


def main() -> None:
    print("=== safe borrow: Figure 1.3 ===")
    report = verify_circuit(safe_circuit(), [2], backend="bdd")
    print(report.summary())
    # even on an adversarial input, the Bell pair with the outside world
    # is untouched:
    probe = Counterexample("plus-restoration", {}, [1, 1, 0, 1, 0])
    demo = demonstrate_entanglement_violation(safe_circuit(), 2, probe)
    print(f"Bell fidelity after the safe circuit: {demo.fidelity:.6f}")

    print("\n=== unsafe borrow: one Toffoli dropped ===")
    report = verify_circuit(broken_circuit(), [2], backend="bdd")
    verdict = report.verdicts[0]
    print(report.summary())
    print(f"counterexample: {verdict.counterexample.describe()}")

    quantum = demonstrate(broken_circuit(), 2, verdict.counterexample)
    print(f"single-qubit demonstration: {quantum}")
    bell = demonstrate_entanglement_violation(
        broken_circuit(), 2, verdict.counterexample
    )
    print(f"entanglement demonstration: {bell}")
    print(
        "\nThe lender's Bell pair is damaged — exactly the multi-program\n"
        "hazard Section 7 warns about, caught before execution."
    )


if __name__ == "__main__":
    main()
