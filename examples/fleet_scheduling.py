"""The fleet tier made executable: routing one job stream over a pool
of machines.

A cloud operator rarely owns one big QPU — it owns several smaller
ones.  :class:`~repro.multiprog.FleetRouter` turns N independent
:class:`~repro.multiprog.MultiProgrammer` shards into one scheduler:
every ``submit()`` is ranked across shards by a pluggable placement
policy, jobs that cannot start anywhere queue on the most promising
shard (or at fleet level), and every release re-drains the whole fleet
— including *migrating* a job queued on one shard to another that just
freed capacity.

This walkthrough:

1. replays one pinned 30-job seeded trace through a single 22-qubit
   machine and through a 2x11 fleet under each registered placement
   policy, comparing admissions and counting migrations;
2. demonstrates a wall-clock deadline expiring a queued job, with an
   injected clock so the run is deterministic;
3. drives a burst of jobs through the :class:`FleetService` front end,
   showing how one hopeless job is rejected without shedding the rest
   of the burst.

Run:  python examples/fleet_scheduling.py
"""

from repro.multiprog import (
    FleetRouter,
    FleetService,
    QuantumJob,
    available_placements,
)
from repro.testing import random_fleet_trace, replay_trace


def policy_shootout() -> None:
    print("=== one 22-qubit machine vs a 2x11 fleet ===")
    trace = random_fleet_trace(seed=1, num_jobs=30)
    print(f"pinned trace: seed=1, {len(trace)} events\n")

    single = FleetRouter([22])
    single_log = replay_trace(single, trace)
    base = single_log.stats
    print(
        f"{'single 22':>14}: admitted {base['admitted']:2d}, "
        f"rejected {base['rejected']}"
    )

    for placement in available_placements():
        fleet = FleetRouter([11, 11], placement=placement)
        log = replay_trace(fleet, trace)
        stats = log.stats
        print(
            f"{placement:>14}: admitted {stats['admitted']:2d}, "
            f"rejected {stats['rejected']}, "
            f"migrations {stats['migrations']}, "
            f"backfilled {stats['admitted_from_queue']}"
        )
    print(
        "\nTwo half-size shards give up single-machine packing headroom\n"
        "but gain two independent queues that drain in parallel, and\n"
        "cross-shard migration moves waiting jobs to whichever shard\n"
        "frees capacity first - on this trace the fleet beats even the\n"
        "one big machine, and it never admits less than one 11-qubit\n"
        "machine alone would (the gate the benchmark suite enforces)."
    )


def deadline_demo() -> None:
    print("\n=== wall-clock deadlines (injected clock) ===")
    now = [0.0]
    fleet = FleetRouter([4], clock=lambda: now[0])
    trace = random_fleet_trace(seed=3, num_jobs=4, max_data=4)
    jobs = [e.job for e in trace if e.kind == "submit"]

    fleet.submit(jobs[0])
    outcome = fleet.submit(jobs[1], deadline_s=5.0)
    print(f"{jobs[1].name}: {outcome.status} with a 5s deadline")

    now[0] = 4.0
    fleet.submit(jobs[2])  # deadlines are evaluated lazily, per event
    print(f"t=4.0s: pending {fleet.pending()}")

    now[0] = 6.0
    fleet.submit(jobs[3])
    stats = fleet.fleet_stats()
    print(
        f"t=6.0s: pending {fleet.pending()}, "
        f"deadline_expired={stats['deadline_expired']} "
        f"({', '.join(stats['deadline_expired_names'])})"
    )
    print(
        "The logical clock stays authoritative for replay - wall time\n"
        "only ever withdraws queued jobs, it never reorders them."
    )


def service_demo() -> None:
    print("\n=== FleetService: burst submission front end ===")
    service = FleetService(shards=[6, 6], placement="best-fit-width")
    trace = random_fleet_trace(seed=7, num_jobs=6, max_data=5)
    for event in trace:
        if event.kind == "submit":
            service.enqueue(event.job)
    # One job wider than the widest shard rides along in the burst.
    wide = random_fleet_trace(seed=9, num_jobs=1, max_data=9)[0].job
    service.enqueue(
        QuantumJob("too-wide", wide.circuit, wide.ancilla_requests)
    )
    print(f"buffered {service.buffered} jobs; flushing the burst...")
    for result in service.flush():
        line = f"  {result.name}: {result.status}"
        if result.status == "admitted":
            line += f" on {result.outcome.shard}"
        elif result.error:
            line += f" ({result.error.splitlines()[0][:60]}...)"
        print(line)
    summary = service.status()
    print(f"outcome counts: {summary['flushed_results']}")
    print(
        "A hopeless job is rejected on the spot; the rest of the burst\n"
        "still routes - one bad job never sheds its neighbours."
    )


def main() -> None:
    policy_shootout()
    deadline_demo()
    service_demo()


if __name__ == "__main__":
    main()
