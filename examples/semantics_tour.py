"""A tour of QBorrow's denotational semantics (Sections 4 and 5).

* ``borrow`` introduces nondeterminism: ``⟦S⟧`` is a *set* of quantum
  operations, one per idle-qubit choice;
* the Figure 4.4 nested-borrow program collapses to a single operation
  (both borrows can only take q3);
* Example 5.2: a qubit can be safely uncomputed even when the program
  contains an unsafe borrow;
* Theorem 5.5: safety of all borrows <=> deterministic semantics.

Run:  python examples/semantics_tour.py
"""

from repro.lang import borrow, seq, unitary
from repro.semantics import Interpretation
from repro.verify import program_is_safe, program_safely_uncomputes
from repro.verify.channel import semantics_is_deterministic

UNIVERSE = ["q1", "q2", "q3", "q4", "q5"]


def figure_44_program():
    s2 = seq(
        unitary("CCX", "q4", "q5", "a2"),
        unitary("CCX", "a2", "q2", "q1"),
        unitary("CCX", "q4", "q5", "a2"),
        unitary("CCX", "a2", "q2", "q1"),
    )
    s1 = seq(
        unitary("CCX", "q1", "q2", "a1"),
        unitary("CCX", "a1", "q4", "q5"),
        unitary("CCX", "q1", "q2", "a1"),
        unitary("CCX", "a1", "q4", "q5"),
        borrow("a2", s2),
    )
    return seq(unitary("CX", "q2", "q3"), borrow("a1", s1))


def main() -> None:
    interp = Interpretation(UNIVERSE)

    print("=== nondeterminism from borrow ===")
    unsafe = borrow("a", unitary("X", "a"))
    ops = interp.denote(unsafe)
    print(
        f"borrow a; X[a]; release a   over 5 qubits: |[S]| = {len(ops)} "
        f"(one operation per idle-qubit choice)"
    )

    safe = borrow("a", unitary("X", "a"), unitary("X", "a"))
    ops = interp.denote(safe)
    print(f"borrow a; X[a]; X[a]; release a: |[S]| = {len(ops)} (collapsed)")

    print("\n=== Figure 4.4: nested borrows forced onto q3 ===")
    program = figure_44_program()
    ops = interp.denote(program)
    print(f"|[S]| = {len(ops)}  (both a1 and a2 must take q3)")
    print(f"program safe (all borrows safe): {program_is_safe(program, UNIVERSE)}")
    print(
        "deterministic semantics (Theorem 5.5): "
        f"{semantics_is_deterministic(program, UNIVERSE)}"
    )

    print("\n=== Example 5.2 ===")
    example = seq(
        unitary("X", "q1"),
        borrow("a", unitary("X", "q1"), unitary("X", "a")),
    )
    print(
        "q1 safely uncomputed: "
        f"{program_safely_uncomputes(example, 'q1', UNIVERSE)}"
    )
    print(f"whole program safe:  {program_is_safe(example, UNIVERSE)}")
    print(
        "-> q1 could still be substituted by a dirty qubit even though\n"
        "   the borrow of 'a' inside is unsafe (per-qubit verification)."
    )

    print("\n=== stuck programs ===")
    greedy = borrow(
        "a",
        unitary("CX", "a", "q1"),
        unitary("CX", "a", "q2"),
        unitary("CX", "a", "q3"),
        unitary("CX", "a", "q4"),
        unitary("CX", "a", "q5"),
    )
    ops = interp.denote(greedy)
    print(
        f"a borrow that touches every qubit: |[S]| = {len(ops)} "
        f"(empty semantics = stuck, no idle qubit to take)"
    )


if __name__ == "__main__":
    main()
